//! Workload plumbing shared by all figure harnesses.

use higraph::prelude::*;
use higraph::sim::NetworkStats;

/// The evaluated algorithms: the paper's four (Sec. 5.1) plus the two
/// stress workloads the vertex-program library ships — WCC (full first
/// frontier that then decays unevenly) and MS-BFS (64 simultaneous
/// landmark traversals, the densest dataflow traffic in the suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Breadth-First Search.
    Bfs,
    /// Single-Source Shortest Path.
    Sssp,
    /// Single-Source Widest Path.
    Sswp,
    /// PageRank.
    Pr,
    /// Weakly Connected Components.
    Wcc,
    /// Multi-source BFS (64 landmarks).
    Msbfs,
}

impl Algo {
    /// Figure order: the paper's four first, then the extended workloads.
    pub const ALL: [Algo; 6] = [
        Algo::Bfs,
        Algo::Sssp,
        Algo::Sswp,
        Algo::Pr,
        Algo::Wcc,
        Algo::Msbfs,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Bfs => "BFS",
            Algo::Sssp => "SSSP",
            Algo::Sswp => "SSWP",
            Algo::Pr => "PR",
            Algo::Wcc => "WCC",
            Algo::Msbfs => "MSBFS",
        }
    }

    /// The traversal source for single-source programs: the deterministic
    /// hub vertex (Graph500 practice), guaranteed to lie in the reachable
    /// core. An empty graph has no hub; the out-of-range sentinel gives
    /// those programs an empty initial frontier, so the run reports the
    /// empty-frontier zero-cycle metrics (the conventions of
    /// `tests/metrics_finiteness.rs`) instead of traversing from a
    /// nonexistent vertex 0.
    fn source(graph: &Csr) -> u32 {
        higraph::graph::stats::hub_vertex(graph)
            .map(|v| v.0)
            .unwrap_or(u32::MAX)
    }

    /// Up to 64 evenly spaced landmark vertices for MS-BFS. On an empty
    /// graph the single out-of-range landmark yields an empty frontier,
    /// matching [`Algo::source`]'s convention.
    fn msbfs_program(graph: &Csr) -> MultiSourceBfs {
        let num_v = graph.num_vertices() as usize;
        let sources: Vec<u32> = if num_v == 0 {
            vec![u32::MAX]
        } else {
            let count = num_v.min(64);
            let step = (num_v / count).max(1);
            (0..count).map(|i| (i * step) as u32).collect()
        };
        MultiSourceBfs::new(sources).expect("1..=64 landmarks")
    }

    /// Runs this algorithm on `graph` under `config` and returns metrics.
    /// PageRank runs `pr_iters` power iterations.
    ///
    /// # Errors
    ///
    /// Returns the [`StallDiagnostic`] of a mis-sized configuration, so a
    /// stalled design point fails its own sweep cell instead of aborting
    /// the whole sweep.
    pub fn run(
        self,
        config: &AcceleratorConfig,
        graph: &Csr,
        pr_iters: u32,
    ) -> Result<Metrics, StallDiagnostic> {
        self.run_with(config, graph, pr_iters, true)
    }

    /// [`Algo::run`] with explicit control over the engine's event-driven
    /// fast-forward (results are bit-identical either way; the `simspeed`
    /// repro target measures the host-time difference).
    pub fn run_with(
        self,
        config: &AcceleratorConfig,
        graph: &Csr,
        pr_iters: u32,
        fast_forward: bool,
    ) -> Result<Metrics, StallDiagnostic> {
        let source = Algo::source(graph);
        let mut engine = Engine::new(config.clone(), graph);
        engine.set_fast_forward(fast_forward);
        let metrics = match self {
            Algo::Bfs => engine.run(&Bfs::from_source(source))?.metrics,
            Algo::Sssp => engine.run(&Sssp::from_source(source))?.metrics,
            Algo::Sswp => engine.run(&Sswp::from_source(source))?.metrics,
            Algo::Pr => engine.run(&PageRank::new(pr_iters))?.metrics,
            Algo::Wcc => engine.run(&Wcc::new())?.metrics,
            Algo::Msbfs => engine.run(&Algo::msbfs_program(graph))?.metrics,
        };
        Ok(metrics)
    }

    /// Runs this algorithm across `shard.num_chips` chips and returns the
    /// property-erased summary the multi-chip sweeps report.
    ///
    /// Uses the default (auto) threading: each lock-step drain leases
    /// whatever workers the shared `higraph_pool::CorePool` has idle at
    /// that moment, so chip-level parallelism composes with the sweep
    /// harnesses' batch-level parallelism instead of oversubscribing the
    /// host. Results are bit-identical for any worker count;
    /// [`Algo::run_sharded_threads`] exposes the explicit override.
    ///
    /// # Errors
    ///
    /// Returns the [`StallDiagnostic`] of a stalled lock-step drain.
    pub fn run_sharded(
        self,
        config: &AcceleratorConfig,
        shard: ShardConfig,
        graph: &Csr,
        pr_iters: u32,
    ) -> Result<ShardedSummary, StallDiagnostic> {
        self.run_sharded_threads(config, shard, graph, pr_iters, None)
    }

    /// [`Algo::run_sharded`] with explicit control over the engine's
    /// intra-run worker threads (`None` = lease idle pool workers per
    /// drain, up to one per chip; `Some(1)` = serial drain). Results are
    /// bit-identical for every setting — `tests/thread_determinism.rs`
    /// asserts it; only host time changes.
    ///
    /// # Errors
    ///
    /// Returns the [`StallDiagnostic`] of a stalled lock-step drain.
    pub fn run_sharded_threads(
        self,
        config: &AcceleratorConfig,
        shard: ShardConfig,
        graph: &Csr,
        pr_iters: u32,
        threads: Option<usize>,
    ) -> Result<ShardedSummary, StallDiagnostic> {
        let mut engine = ShardedEngine::new(config.clone(), shard, graph);
        engine.set_threads(threads);
        match self {
            Algo::Bfs => engine
                .run(&Bfs::from_source(Algo::source(graph)))
                .map(ShardedSummary::from),
            Algo::Sssp => engine
                .run(&Sssp::from_source(Algo::source(graph)))
                .map(ShardedSummary::from),
            Algo::Sswp => engine
                .run(&Sswp::from_source(Algo::source(graph)))
                .map(ShardedSummary::from),
            Algo::Pr => engine
                .run(&PageRank::new(pr_iters))
                .map(ShardedSummary::from),
            Algo::Wcc => engine.run(&Wcc::new()).map(ShardedSummary::from),
            Algo::Msbfs => engine
                .run(&Algo::msbfs_program(graph))
                .map(ShardedSummary::from),
        }
    }

    /// Runs this algorithm across `shard.num_chips` chips under
    /// cooperative run control: `control` can cancel the run mid-drain
    /// or park it at a committed iteration boundary into a restorable
    /// checkpoint (`docs/robustness.md`). With `checkpoint`, the run
    /// resumes from that parked state instead of starting fresh. A run
    /// that completes is bit-identical to [`Algo::run_sharded`].
    ///
    /// # Errors
    ///
    /// [`ControlError::Stall`] for a stalled drain,
    /// [`ControlError::Snapshot`] for a checkpoint that does not match
    /// this graph, configuration, or shard geometry.
    pub fn run_sharded_controlled(
        self,
        config: &AcceleratorConfig,
        shard: ShardConfig,
        graph: &Csr,
        pr_iters: u32,
        control: &RunControl,
        checkpoint: Option<&[u8]>,
    ) -> Result<ControlledOutcome, ControlError> {
        let mut engine = ShardedEngine::new(config.clone(), shard, graph);
        fn go<Prog>(
            engine: &mut ShardedEngine<'_>,
            prog: &Prog,
            control: &RunControl,
            checkpoint: Option<&[u8]>,
        ) -> Result<ControlledOutcome, ControlError>
        where
            Prog: VertexProgram,
            Prog::Prop: higraph::sim::SnapValue,
        {
            let outcome = match checkpoint {
                Some(bytes) => engine.resume_controlled(prog, control, bytes)?,
                None => engine
                    .run_controlled(prog, control)
                    .map_err(ControlError::Stall)?,
            };
            Ok(match outcome {
                ShardedOutcome::Done(r) => ControlledOutcome::Done(ShardedSummary::from(r)),
                ShardedOutcome::Parked(ck) => ControlledOutcome::Parked(ck),
                ShardedOutcome::Cancelled => ControlledOutcome::Cancelled,
            })
        }
        match self {
            Algo::Bfs => go(
                &mut engine,
                &Bfs::from_source(Algo::source(graph)),
                control,
                checkpoint,
            ),
            Algo::Sssp => go(
                &mut engine,
                &Sssp::from_source(Algo::source(graph)),
                control,
                checkpoint,
            ),
            Algo::Sswp => go(
                &mut engine,
                &Sswp::from_source(Algo::source(graph)),
                control,
                checkpoint,
            ),
            Algo::Pr => go(&mut engine, &PageRank::new(pr_iters), control, checkpoint),
            Algo::Wcc => go(&mut engine, &Wcc::new(), control, checkpoint),
            Algo::Msbfs => go(
                &mut engine,
                &Algo::msbfs_program(graph),
                control,
                checkpoint,
            ),
        }
    }
}

/// How a controlled sharded run ended, with the property array erased —
/// what `higraph-serve` keeps per job.
// Matched once per job and destructured, like the engine outcome enums
// it summarizes — the inline summary's size skew never accumulates.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ControlledOutcome {
    /// The run finished; bit-identical to [`Algo::run_sharded`].
    Done(ShardedSummary),
    /// The run parked into a restorable checkpoint.
    Parked(Checkpoint),
    /// The run observed a cancellation request and discarded its state.
    Cancelled,
}

/// A [`ShardedRunResult`] with the property array erased — what the
/// sweep harnesses keep per cell, independent of the program's property
/// type.
#[derive(Debug, Clone)]
pub struct ShardedSummary {
    /// Aggregate critical-path metrics (merged counters).
    pub metrics: Metrics,
    /// Per-chip metrics, indexed by chip number.
    pub chips: Vec<Metrics>,
    /// Update packets that crossed the inter-chip link.
    pub cross_chip_packets: u64,
    /// Link fabric counters.
    pub link: NetworkStats,
    /// Compute-only scatter cycles of the slowest chip.
    pub max_chip_scatter_cycles: u64,
    /// Aggregate cycles per processed edge.
    pub cycles_per_edge: f64,
}

impl<P> From<ShardedRunResult<P>> for ShardedSummary {
    fn from(r: ShardedRunResult<P>) -> Self {
        ShardedSummary {
            max_chip_scatter_cycles: r.max_chip_scatter_cycles(),
            cycles_per_edge: r.cycles_per_edge(),
            metrics: r.metrics,
            chips: r.chips,
            cross_chip_packets: r.cross_chip_packets,
            link: r.link,
        }
    }
}

/// Dataset scaling for quick vs full runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Power-of-two divisor applied to Table 2 sizes (1 = full scale).
    pub divisor: u32,
    /// PageRank power iterations.
    pub pr_iters: u32,
}

impl Scale {
    /// Laptop-friendly default: datasets ÷4, 5 PR iterations.
    pub fn quick() -> Self {
        Scale {
            divisor: 4,
            pr_iters: 5,
        }
    }

    /// Full Table 2 sizes, 10 PR iterations.
    pub fn full() -> Self {
        Scale {
            divisor: 1,
            pr_iters: 10,
        }
    }

    /// Even smaller than `quick`, for CI tests and Criterion benches.
    pub fn tiny() -> Self {
        Scale {
            divisor: 16,
            pr_iters: 3,
        }
    }

    /// Builds `dataset` at this scale.
    pub fn build(&self, dataset: Dataset) -> Csr {
        dataset.build_scaled(self.divisor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_labels() {
        let labels: Vec<_> = Algo::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels, ["BFS", "SSSP", "SSWP", "PR", "WCC", "MSBFS"]);
    }

    #[test]
    fn runs_produce_metrics() {
        let s = Scale::tiny();
        let g = s.build(Dataset::Vote);
        for algo in Algo::ALL {
            let m = algo
                .run(&AcceleratorConfig::higraph(), &g, s.pr_iters)
                .expect("well-sized config");
            assert!(m.cycles > 0, "{}", algo.label());
            assert!(m.edges_processed > 0, "{}", algo.label());
        }
    }

    #[test]
    fn empty_graph_reports_empty_frontier_metrics() {
        let g = EdgeList::new(0).into_csr();
        for algo in Algo::ALL {
            let m = algo
                .run(&AcceleratorConfig::higraph(), &g, 3)
                .expect("empty graph must not stall");
            assert_eq!(m.cycles, 0, "{}", algo.label());
            assert_eq!(m.iterations, 0, "{}", algo.label());
            assert!(m.gteps().is_finite(), "{}", algo.label());
        }
    }

    #[test]
    fn stalled_configuration_fails_its_own_run() {
        // Algo::run propagates the diagnostic instead of panicking; the
        // stall-guard override is the deterministic way to force one.
        let s = Scale::tiny();
        let g = s.build(Dataset::Vote);
        let source = higraph::graph::stats::hub_vertex(&g).expect("non-empty").0;
        let mut engine = Engine::new(AcceleratorConfig::higraph(), &g);
        engine.set_stall_guard(Some(1));
        let err = engine.run(&Bfs::from_source(source)).expect_err("stalls");
        assert_eq!(err.stall.limit, 1);
    }

    #[test]
    fn sharded_summary_matches_serial_run() {
        let s = Scale::tiny();
        let g = s.build(Dataset::Vote);
        let serial = Algo::Wcc
            .run(&AcceleratorConfig::higraph(), &g, s.pr_iters)
            .expect("well-sized config");
        let sharded = Algo::Wcc
            .run_sharded(
                &AcceleratorConfig::higraph(),
                ShardConfig::new(1),
                &g,
                s.pr_iters,
            )
            .expect("well-sized config");
        assert_eq!(sharded.metrics, serial, "P=1 is bit-identical to serial");
        assert_eq!(sharded.cross_chip_packets, 0);
    }
}
