//! The resident job service behind the `higraph-serve` binary.
//!
//! A session speaks newline-delimited flat JSON on stdin/stdout (the
//! [`crate::report`] writer/parser — no serde in this hermetic
//! workspace). Each input line is one operation object; each output line
//! is one event object. See `docs/serve.md` for the protocol grammar and
//! `docs/robustness.md` for the survivability contract.
//!
//! # Operations
//!
//! * `{"op": "submit", "id": …, …}` — queue a simulation job. Fields
//!   beyond `id` are optional with defaults: `dataset` (name or paper
//!   abbreviation, default `vote`), `algo` (default `bfs`), `config`
//!   (preset `higraph` | `higraph-mini` | `graphdyns`), `divisor`
//!   (power-of-two dataset scaling, default 16), `pr_iters` (default 3),
//!   `chips` (default 1), `priority` (higher runs first, default 0),
//!   `cache_kb` (enables the HBM memory model with that cache size),
//!   `budget_cycles` (park into a checkpoint once the run has committed
//!   that many scatter cycles), `budget_ms` (host wall-clock deadline,
//!   enforced by the binary's watchdog; `0` parks deterministically
//!   before the first cycle), and `inject` (`"panic"` makes the job
//!   panic mid-run — the fault-injection hook behind the isolation
//!   tests).
//! * `{"op": "cancel", "id": …}` — remove a queued or parked job, or
//!   cooperatively cancel a running one (via the shared
//!   [`RunControl`] registry; the run discards its state at the next
//!   poll boundary).
//! * `{"op": "run"}` — execute everything queued, highest priority
//!   first (FIFO within a priority level).
//! * `{"op": "resume", "id": …}` — re-queue a parked job from its
//!   checkpoint. An optional `budget_cycles` sets a new parking point;
//!   omitted means run to completion.
//! * `{"op": "stats"}` — emit queue/memo/pool counters.
//! * `{"op": "shutdown"}` — run the remaining queue, say goodbye.
//! * `{"op": "halt"}` — stop immediately *without* draining the queue
//!   (crash simulation: accepted-but-unfinished journal entries survive
//!   for the next session to recover).
//!
//! EOF on stdin behaves like `shutdown`: pending jobs are flushed, the
//! process exits cleanly.
//!
//! # Survivability
//!
//! Every job runs inside `catch_unwind`: a panicking job produces a
//! `{"event": "failed", …}` line and the session keeps serving. A job
//! that exceeds its cycle budget (or whose watchdog requests a park)
//! checkpoints at the committed iteration boundary and moves to the
//! parked set; `resume` continues it bit-identically — the completed
//! result is indistinguishable from an uninterrupted run, so it is
//! memoized under the same key.
//!
//! With a journal ([`ServeSession::with_journal`]) the session appends
//! an `accepted` record (carrying the original submit line) per
//! admitted job, `started` when it begins executing, and `finished`
//! when it reaches a terminal state. Parked checkpoints persist to
//! sidecar files next to the journal. A session restarted on the same
//! journal reports every accepted-but-unfinished job with a
//! `{"event": "recovered", …}` line and re-queues it — from its last
//! checkpoint when one exists, from scratch otherwise.
//!
//! # Memoization and determinism
//!
//! Results are memoized under the key *(graph content hash,
//! [`AcceleratorConfig::canonical_encoding`], chips, pr_iters, algo)*.
//! This is sound **because** every run is bit-deterministic: cycle
//! counts and `Metrics` do not depend on the worker count, steal order,
//! or co-scheduled jobs (`tests/thread_determinism.rs`), so a cached
//! result is indistinguishable from a re-run. Stalled configurations are
//! memoized too — re-submitting a known-bad design point fails instantly
//! instead of burning another stall-guard's worth of host time. The memo
//! is a bounded [`LruCache`]; evictions show up in `stats`.
//!
//! Jobs execute through [`Algo::run_sharded_controlled`], whose
//! lock-step drains poll the per-job [`RunControl`] for cancellation
//! and parking at committed boundaries.

use crate::memo::LruCache;
use crate::report::{parse_flat_json_values, write_json_number, write_json_string, JsonValue};
use crate::workload::{Algo, ControlledOutcome};
use higraph::prelude::*;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Upper bound on memoized job outcomes; the least-recently-used entry
/// is evicted beyond this (`stats` reports the eviction count).
const MEMO_CAPACITY: usize = 256;

/// A memoized job outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
enum MemoEntry {
    /// Completed: aggregate cycle count and throughput.
    Ok { cycles: u64, gteps: f64 },
    /// The configuration stalled its lock-step drain.
    Stalled,
}

/// One parsed, validated submission.
#[derive(Debug, Clone)]
struct JobSpec {
    id: String,
    dataset: Dataset,
    algo: Algo,
    config: AcceleratorConfig,
    chips: usize,
    divisor: u32,
    pr_iters: u32,
    /// Park into a checkpoint once this many scatter cycles committed.
    budget_cycles: Option<u64>,
    /// Host wall-clock deadline for the binary's watchdog; `Some(0)`
    /// parks deterministically before the first cycle.
    budget_ms: Option<u64>,
    /// Fault-injection hook: panic mid-run to exercise isolation.
    inject_panic: bool,
}

/// A queued job with its scheduling key and cooperative control.
struct Pending {
    seq: u64,
    priority: i64,
    spec: JobSpec,
    control: Arc<RunControl>,
    /// Serialized checkpoint to resume from (parked or recovered jobs).
    checkpoint: Option<Vec<u8>>,
    /// The original submit line, journaled verbatim for recovery.
    submit_line: String,
}

/// A job parked into a checkpoint, awaiting `resume` (or `cancel`).
struct ParkedJob {
    priority: i64,
    spec: JobSpec,
    control: Arc<RunControl>,
    checkpoint: Vec<u8>,
    submit_line: String,
}

/// The shared cancellation registry: job id → its [`RunControl`].
/// Entries live from acceptance to terminal completion (parked jobs
/// stay registered). The binary's stdin reader thread uses this to
/// cancel a *running* job without waiting for the session thread.
pub type ControlRegistry = Arc<Mutex<BTreeMap<String, Arc<RunControl>>>>;

/// A boxed job-lifecycle callback ([`ServeSession::set_observer`]).
pub type JobObserver = Box<dyn FnMut(JobEvent<'_>) + Send>;

/// Lifecycle notifications for the binary's watchdog thread.
pub enum JobEvent<'a> {
    /// A job is about to execute on the session thread.
    Started {
        /// The job id.
        id: &'a str,
        /// Its wall-clock budget, if any.
        budget_ms: Option<u64>,
        /// The control to park/cancel it through.
        control: &'a Arc<RunControl>,
    },
    /// The job returned (result, parked, failed, or cancelled).
    Finished {
        /// The job id.
        id: &'a str,
    },
}

/// The append-only crash journal: one flat-JSON record per line
/// (`{"j": "accepted"|"started"|"parked"|"finished", "id": …}`), plus
/// checkpoint sidecar files `<journal>.<fnv(id)>.ckpt`. Writes are
/// best-effort: a full disk degrades recovery, never the session.
struct Journal {
    path: PathBuf,
}

impl Journal {
    fn append(&self, record: &str) {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            let _ = writeln!(f, "{record}");
        }
    }

    fn record_accepted(&self, id: &str, line: &str) {
        let mut s = String::from("{\"j\": \"accepted\", \"id\": ");
        write_json_string(&mut s, id);
        s.push_str(", \"line\": ");
        write_json_string(&mut s, line);
        s.push('}');
        self.append(&s);
    }

    fn record_event(&self, what: &str, id: &str) {
        let mut s = format!("{{\"j\": \"{what}\", \"id\": ");
        write_json_string(&mut s, id);
        s.push('}');
        self.append(&s);
    }

    /// Sidecar path for a job's parked checkpoint. The id is hashed so
    /// arbitrary id strings stay filesystem-safe.
    fn sidecar(&self, id: &str) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(format!(
            ".{:016x}.ckpt",
            higraph::sim::content_checksum(id.as_bytes())
        ));
        PathBuf::from(name)
    }

    fn write_checkpoint(&self, id: &str, bytes: &[u8]) {
        let _ = std::fs::write(self.sidecar(id), bytes);
    }

    fn read_checkpoint(&self, id: &str) -> Option<Vec<u8>> {
        std::fs::read(self.sidecar(id)).ok()
    }

    fn remove_checkpoint(&self, id: &str) {
        let _ = std::fs::remove_file(self.sidecar(id));
    }
}

/// A resident job-service session: the state machine the `higraph-serve`
/// binary drives line by line, exposed as a library so tests can
/// interleave operations (e.g. cancel between [`ServeSession::step`]
/// calls) without a subprocess.
pub struct ServeSession {
    /// Built graphs with their content hashes, keyed by (dataset, divisor).
    graphs: BTreeMap<(Dataset, u32), (Csr, u64)>,
    /// Memoized outcomes, keyed by the full job identity, LRU-bounded.
    memo: LruCache<MemoEntry>,
    queue: Vec<Pending>,
    /// Jobs parked into checkpoints, keyed by id.
    parked: BTreeMap<String, ParkedJob>,
    controls: ControlRegistry,
    journal: Option<Journal>,
    observer: Option<JobObserver>,
    seq: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    shutdown: bool,
    halted: bool,
}

impl Default for ServeSession {
    fn default() -> Self {
        ServeSession::new()
    }
}

impl ServeSession {
    /// A fresh session with empty queue and caches.
    pub fn new() -> Self {
        ServeSession {
            graphs: BTreeMap::new(),
            memo: LruCache::new(MEMO_CAPACITY),
            queue: Vec::new(),
            parked: BTreeMap::new(),
            controls: Arc::new(Mutex::new(BTreeMap::new())),
            journal: None,
            observer: None,
            seq: 0,
            completed: 0,
            failed: 0,
            cancelled: 0,
            shutdown: false,
            halted: false,
        }
    }

    /// A session journaling to `path`, recovering any
    /// accepted-but-unfinished jobs a previous session (crashed, halted,
    /// or killed) left behind. Returns the recovery event lines:
    /// one `{"event": "recovered", …}` per lost job followed by its
    /// re-queue events. Recovered jobs resume from their last parked
    /// checkpoint when a sidecar exists, from scratch otherwise.
    pub fn with_journal(path: impl Into<PathBuf>) -> (Self, Vec<String>) {
        let path = path.into();
        let mut session = ServeSession::new();
        let mut events = Vec::new();

        let prior = std::fs::read_to_string(&path).unwrap_or_default();
        // First-acceptance order; a finished id may be legitimately
        // re-accepted later, so balance counts rather than set-test.
        let mut order: Vec<String> = Vec::new();
        let mut last_line: BTreeMap<String, String> = BTreeMap::new();
        let mut accepted: BTreeMap<String, u64> = BTreeMap::new();
        let mut started: BTreeMap<String, u64> = BTreeMap::new();
        let mut finished: BTreeMap<String, u64> = BTreeMap::new();
        for line in prior.lines() {
            let Ok(fields) = parse_flat_json_values(line) else {
                continue;
            };
            let Some(what) = fields.get("j").and_then(JsonValue::as_str) else {
                continue;
            };
            let Some(id) = fields.get("id").and_then(JsonValue::as_str) else {
                continue;
            };
            match what {
                "accepted" => {
                    if let Some(l) = fields.get("line").and_then(JsonValue::as_str) {
                        if !last_line.contains_key(id) {
                            order.push(id.to_string());
                        }
                        last_line.insert(id.to_string(), l.to_string());
                        *accepted.entry(id.to_string()).or_insert(0) += 1;
                    }
                }
                "started" => *started.entry(id.to_string()).or_insert(0) += 1,
                "finished" => *finished.entry(id.to_string()).or_insert(0) += 1,
                _ => {}
            }
        }

        let journal = Journal { path };
        // Truncate: recovered jobs re-journal themselves through the
        // normal submit path below.
        let _ = std::fs::write(&journal.path, "");
        session.journal = Some(journal);

        for id in order {
            let done = finished.get(&id).copied().unwrap_or(0);
            if accepted.get(&id).copied().unwrap_or(0) <= done {
                continue;
            }
            let was_running = started.get(&id).copied().unwrap_or(0) > done;
            let ckpt = session
                .journal
                .as_ref()
                .and_then(|j| j.read_checkpoint(&id));
            let mut ev = String::from("{\"event\": \"recovered\", \"id\": ");
            write_json_string(&mut ev, &id);
            ev.push_str(&format!(
                ", \"was_running\": {}, \"from_checkpoint\": {}}}",
                u8::from(was_running),
                u8::from(ckpt.is_some())
            ));
            events.push(ev);
            let Some(line) = last_line.get(&id) else {
                continue;
            };
            let line = line.clone();
            events.extend(session.handle_line(&line));
            if let Some(bytes) = ckpt {
                if let Some(p) = session.queue.iter_mut().find(|p| p.spec.id == id) {
                    p.checkpoint = Some(bytes);
                    // Recovered jobs run to completion; the budgets that
                    // parked them before the crash are spent.
                    p.spec.budget_cycles = None;
                    p.spec.budget_ms = None;
                }
            }
        }
        (session, events)
    }

    /// The shared id → [`RunControl`] registry (see [`ControlRegistry`]).
    pub fn controls(&self) -> ControlRegistry {
        Arc::clone(&self.controls)
    }

    /// Installs a job-lifecycle observer (the binary's watchdog hook).
    pub fn set_observer(&mut self, observer: JobObserver) {
        self.observer = Some(observer);
    }

    /// True once a `shutdown` operation has been processed; the binary
    /// exits its read loop.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// True once a `halt` operation has been processed; the binary exits
    /// immediately *without* flushing the queue.
    pub fn halt_requested(&self) -> bool {
        self.halted
    }

    /// Jobs still waiting to run.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs parked into checkpoints, awaiting `resume`.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Memo-cache hits so far.
    pub fn memo_hits(&self) -> u64 {
        self.memo.hits()
    }

    /// Processes one input line, returning the event lines it produced.
    pub fn handle_line(&mut self, line: &str) -> Vec<String> {
        let fields = match parse_flat_json_values(line) {
            Ok(f) => f,
            Err(e) => return vec![error_line(None, &format!("bad JSON: {e}"))],
        };
        let op = match fields.get("op").and_then(JsonValue::as_str) {
            Some(op) => op.to_string(),
            None => return vec![error_line(None, "missing string field \"op\"")],
        };
        match op.as_str() {
            "submit" => self.submit(&fields, line),
            "cancel" => self.cancel(&fields),
            "resume" => self.resume(&fields),
            "run" => self.run_queue(),
            "stats" => vec![self.stats_line()],
            "shutdown" => {
                let mut out = self.run_queue();
                out.push(format!(
                    "{{\"event\": \"bye\", \"completed\": {}}}",
                    self.completed
                ));
                self.shutdown = true;
                out
            }
            "halt" => {
                self.halted = true;
                vec![String::from("{\"event\": \"halting\"}")]
            }
            other => vec![error_line(None, &format!("unknown op \"{other}\""))],
        }
    }

    /// Flushes the remaining queue (the EOF path of the binary).
    pub fn flush(&mut self) -> Vec<String> {
        self.run_queue()
    }

    fn submit(&mut self, fields: &BTreeMap<String, JsonValue>, line: &str) -> Vec<String> {
        let id = match fields.get("id").and_then(JsonValue::as_str) {
            Some(id) if !id.is_empty() => id.to_string(),
            _ => {
                return vec![error_line(
                    None,
                    "submit requires a non-empty string \"id\"",
                )]
            }
        };
        if self.queue.iter().any(|p| p.spec.id == id) || self.parked.contains_key(&id) {
            return vec![error_line(
                Some(&id),
                &format!("job \"{id}\" is already queued"),
            )];
        }
        let spec = match parse_spec(id.clone(), fields) {
            Ok(spec) => spec,
            Err(msg) => return vec![error_line(Some(&id), &msg)],
        };
        let priority = match opt_i64(fields, "priority", 0) {
            Ok(p) => p,
            Err(msg) => return vec![error_line(Some(&id), &msg)],
        };
        if let Some(j) = &self.journal {
            j.record_accepted(&id, line);
        }
        let control = Arc::new(RunControl::new());
        lock(&self.controls).insert(id.clone(), Arc::clone(&control));
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Pending {
            seq,
            priority,
            spec,
            control,
            checkpoint: None,
            submit_line: line.to_string(),
        });
        let mut s = String::from("{\"event\": \"queued\", \"id\": ");
        write_json_string(&mut s, &id);
        s.push_str(&format!(", \"priority\": {priority}}}"));
        vec![s]
    }

    fn cancel(&mut self, fields: &BTreeMap<String, JsonValue>) -> Vec<String> {
        let id = match fields.get("id").and_then(JsonValue::as_str) {
            Some(id) => id.to_string(),
            None => return vec![error_line(None, "cancel requires a string \"id\"")],
        };
        let before = self.queue.len();
        self.queue.retain(|p| p.spec.id != id);
        if self.queue.len() < before {
            self.finish_terminal(&id);
            self.cancelled += 1;
            return vec![cancelled_line(&id, "queued")];
        }
        if self.parked.remove(&id).is_some() {
            self.finish_terminal(&id);
            self.cancelled += 1;
            return vec![cancelled_line(&id, "parked")];
        }
        // Running in another thread (binary mode): request a cooperative
        // cancel; the run emits its own cancelled line at the next poll.
        if let Some(control) = lock(&self.controls).get(&id) {
            control.request_cancel();
            let mut s = String::from("{\"event\": \"cancelling\", \"id\": ");
            write_json_string(&mut s, &id);
            s.push('}');
            return vec![s];
        }
        vec![error_line(
            Some(&id),
            &format!("job \"{id}\" is not queued (already run, cancelled, or never seen)"),
        )]
    }

    fn resume(&mut self, fields: &BTreeMap<String, JsonValue>) -> Vec<String> {
        let id = match fields.get("id").and_then(JsonValue::as_str) {
            Some(id) => id.to_string(),
            None => return vec![error_line(None, "resume requires a string \"id\"")],
        };
        let Some(parked) = self.parked.remove(&id) else {
            return vec![error_line(
                Some(&id),
                &format!("job \"{id}\" is not parked"),
            )];
        };
        let budget = match fields.get("budget_cycles") {
            None => None,
            Some(v) => match as_count(v, "budget_cycles") {
                Ok(0) => {
                    self.parked.insert(id.clone(), parked);
                    return vec![error_line(Some(&id), "budget_cycles must be positive")];
                }
                Ok(n) => Some(n),
                Err(msg) => {
                    self.parked.insert(id.clone(), parked);
                    return vec![error_line(Some(&id), &msg)];
                }
            },
        };
        let ParkedJob {
            priority,
            mut spec,
            control,
            checkpoint,
            submit_line,
        } = parked;
        // Resuming grants a fresh lease: the old budgets are spent.
        spec.budget_cycles = budget;
        spec.budget_ms = None;
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Pending {
            seq,
            priority,
            spec,
            control,
            checkpoint: Some(checkpoint),
            submit_line,
        });
        let mut s = String::from("{\"event\": \"resuming\", \"id\": ");
        write_json_string(&mut s, &id);
        s.push('}');
        vec![s]
    }

    /// Executes the single highest-priority queued job (FIFO within a
    /// priority level) and returns its result line; `None` when the
    /// queue is empty. Exposed so callers can interleave cancellation
    /// with execution.
    pub fn step(&mut self) -> Option<String> {
        let best = self
            .queue
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| (p.priority, std::cmp::Reverse(p.seq)))
            .map(|(i, _)| i)?;
        let pending = self.queue.remove(best);
        Some(self.execute(pending))
    }

    fn run_queue(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(line) = self.step() {
            out.push(line);
        }
        out
    }

    fn execute(&mut self, pending: Pending) -> String {
        // Decided at dequeue, before `Started` is announced: a cancel
        // that arrived while the job sat queued never starts at all.
        // Anything requested after this point (watchdog, observer, the
        // binary's reader thread) is a *running* cancel, observed by
        // the engine at a drain-step boundary.
        if pending.control.cancelled() {
            let id = pending.spec.id.clone();
            self.finish_terminal(&id);
            self.cancelled += 1;
            return cancelled_line(&id, "queued");
        }
        let id = pending.spec.id.clone();
        if let Some(j) = &self.journal {
            j.record_event("started", &id);
        }
        if let Some(obs) = self.observer.as_mut() {
            obs(JobEvent::Started {
                id: &id,
                budget_ms: pending.spec.budget_ms,
                control: &pending.control,
            });
        }
        let line = self.run_job(pending);
        if let Some(obs) = self.observer.as_mut() {
            obs(JobEvent::Finished { id: &id });
        }
        line
    }

    fn run_job(&mut self, pending: Pending) -> String {
        let Pending {
            priority,
            spec,
            control,
            checkpoint,
            submit_line,
            ..
        } = pending;
        control.set_budget_cycles(spec.budget_cycles);
        if spec.budget_ms == Some(0) {
            // Deterministic deadline path: the budget is already spent,
            // so park before the first cycle.
            control.request_park();
        }

        let hash = {
            let (_, h) = self
                .graphs
                .entry((spec.dataset, spec.divisor))
                .or_insert_with(|| {
                    let g = spec.dataset.build_scaled(spec.divisor);
                    let h = g.content_hash();
                    (g, h)
                });
            *h
        };
        let key = format!(
            "{:016x}|{}|chips={}|pr={}|{}",
            hash,
            spec.algo.label(),
            spec.chips,
            spec.pr_iters,
            spec.config.canonical_encoding()
        );
        // The memo only short-circuits plain completion paths: resumed,
        // budgeted, parked-at-start, and fault-injected runs must
        // actually execute.
        let plain = checkpoint.is_none()
            && !spec.inject_panic
            && spec.budget_cycles.is_none()
            && !control.park_requested();
        if plain {
            if let Some(entry) = self.memo.get(&key) {
                let entry = *entry;
                self.completed += 1;
                self.finish_terminal(&spec.id);
                return result_line(&spec.id, &entry, true);
            }
        }

        let Some((graph, _)) = self.graphs.get(&(spec.dataset, spec.divisor)) else {
            self.failed += 1;
            self.finish_terminal(&spec.id);
            return error_line(Some(&spec.id), "internal: graph cache entry vanished");
        };
        let ran = catch_unwind(AssertUnwindSafe(|| {
            if spec.inject_panic {
                // Deliberate fault-injection hook behind `"inject": "panic"` —
                // exists to prove the catch_unwind isolation below.
                panic!("injected panic (\"inject\": \"panic\")");
            }
            spec.algo.run_sharded_controlled(
                &spec.config,
                ShardConfig::new(spec.chips),
                graph,
                spec.pr_iters,
                &control,
                checkpoint.as_deref(),
            )
        }));
        match ran {
            Err(payload) => {
                self.failed += 1;
                self.finish_terminal(&spec.id);
                // `as_ref`, not `&payload`: a `&Box<dyn Any>` coerces
                // to a trait object *of the box*, whose downcasts all
                // miss — the payload message would silently be lost.
                failed_line(&spec.id, &panic_message(payload.as_ref()))
            }
            Ok(Err(ControlError::Snapshot(e))) => {
                self.failed += 1;
                self.finish_terminal(&spec.id);
                failed_line(&spec.id, &format!("checkpoint rejected: {e}"))
            }
            Ok(Err(ControlError::Stall(_))) => {
                let entry = MemoEntry::Stalled;
                self.memo.insert(key, entry);
                self.completed += 1;
                self.finish_terminal(&spec.id);
                result_line(&spec.id, &entry, false)
            }
            Ok(Ok(ControlledOutcome::Done(summary))) => {
                let entry = MemoEntry::Ok {
                    cycles: summary.metrics.cycles,
                    gteps: summary.metrics.gteps(),
                };
                // A resumed run's result is bit-identical to an
                // uninterrupted one (tests/scheduler_properties.rs), so
                // it memoizes under the same key.
                self.memo.insert(key, entry);
                self.completed += 1;
                self.finish_terminal(&spec.id);
                result_line(&spec.id, &entry, false)
            }
            Ok(Ok(ControlledOutcome::Parked(ck))) => {
                if let Some(j) = &self.journal {
                    j.write_checkpoint(&spec.id, &ck.bytes);
                    j.record_event("parked", &spec.id);
                }
                let id = spec.id.clone();
                let line = format!(
                    "{{\"event\": \"parked\", \"id\": {}, \"cycles\": {}, \"iterations\": {}}}",
                    json_str(&id),
                    ck.cycles,
                    ck.iterations
                );
                self.parked.insert(
                    id,
                    ParkedJob {
                        priority,
                        spec,
                        control,
                        checkpoint: ck.bytes,
                        submit_line,
                    },
                );
                line
            }
            Ok(Ok(ControlledOutcome::Cancelled)) => {
                self.cancelled += 1;
                self.finish_terminal(&spec.id);
                cancelled_line(&spec.id, "running")
            }
        }
    }

    /// Marks a job terminal: journal `finished`, drop its checkpoint
    /// sidecar, deregister its control.
    fn finish_terminal(&mut self, id: &str) {
        if let Some(j) = &self.journal {
            j.record_event("finished", id);
            j.remove_checkpoint(id);
        }
        lock(&self.controls).remove(id);
    }

    fn stats_line(&self) -> String {
        let pool = higraph::pool::CorePool::global();
        let snap = pool.snapshot();
        format!(
            "{{\"event\": \"stats\", \"queued\": {}, \"completed\": {}, \"parked\": {}, \
             \"failed\": {}, \"cancelled\": {}, \"memo_entries\": {}, \"memo_hits\": {}, \
             \"memo_evictions\": {}, \"memo_capacity\": {}, \"pool_workers\": {}, \
             \"pool_tasks_executed\": {}, \"pool_lease_requests\": {}}}",
            self.queue.len(),
            self.completed,
            self.parked.len(),
            self.failed,
            self.cancelled,
            self.memo.len(),
            self.memo.hits(),
            self.memo.evictions(),
            self.memo.capacity(),
            pool.workers(),
            snap.tasks_executed,
            snap.lease_requests,
        )
    }
}

/// Locks the registry, recovering from a poisoned mutex (a panic in a
/// holder leaves the map usable — it holds only `Arc`s).
fn lock(reg: &ControlRegistry) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<RunControl>>> {
    reg.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn json_str(s: &str) -> String {
    let mut out = String::new();
    write_json_string(&mut out, s);
    out
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("job panicked")
    }
}

/// Fixed-key-order result line: `event`, `id`, `status`, `memo_hit`,
/// then outcome fields — stable for line-oriented consumers (CI greps).
fn result_line(id: &str, entry: &MemoEntry, memo_hit: bool) -> String {
    let mut s = String::from("{\"event\": \"result\", \"id\": ");
    write_json_string(&mut s, id);
    match entry {
        MemoEntry::Ok { cycles, gteps } => {
            s.push_str(&format!(
                ", \"status\": \"ok\", \"memo_hit\": {}, \"cycles\": {cycles}, \"gteps\": ",
                u8::from(memo_hit)
            ));
            write_json_number(&mut s, *gteps);
        }
        MemoEntry::Stalled => {
            s.push_str(&format!(
                ", \"status\": \"stalled\", \"memo_hit\": {}, \"cycles\": 0",
                u8::from(memo_hit)
            ));
        }
    }
    s.push('}');
    s
}

fn cancelled_line(id: &str, stage: &str) -> String {
    let mut s = String::from("{\"event\": \"cancelled\", \"id\": ");
    write_json_string(&mut s, id);
    s.push_str(&format!(", \"stage\": \"{stage}\"}}"));
    s
}

fn failed_line(id: &str, message: &str) -> String {
    let mut s = String::from("{\"event\": \"failed\", \"id\": ");
    write_json_string(&mut s, id);
    s.push_str(", \"message\": ");
    write_json_string(&mut s, message);
    s.push('}');
    s
}

fn error_line(id: Option<&str>, message: &str) -> String {
    let mut s = String::from("{\"event\": \"error\"");
    if let Some(id) = id {
        s.push_str(", \"id\": ");
        write_json_string(&mut s, id);
    }
    s.push_str(", \"message\": ");
    write_json_string(&mut s, message);
    s.push('}');
    s
}

fn parse_spec(id: String, fields: &BTreeMap<String, JsonValue>) -> Result<JobSpec, String> {
    let dataset = parse_dataset(str_field(fields, "dataset", "vote")?)?;
    let algo = parse_algo(str_field(fields, "algo", "bfs")?)?;
    let mut config = parse_config(str_field(fields, "config", "higraph")?)?;
    if let Some(v) = fields.get("cache_kb") {
        let kb = as_count(v, "cache_kb")?;
        if kb == 0 {
            return Err("cache_kb must be positive".to_string());
        }
        config.memory = Some(MemoryConfig::hbm2().with_cache_kb(kb as usize));
    }
    let divisor = as_count_field(fields, "divisor", 16)? as u32;
    if divisor == 0 || !divisor.is_power_of_two() {
        return Err(format!("divisor {divisor} must be a power of two >= 1"));
    }
    let pr_iters = as_count_field(fields, "pr_iters", 3)? as u32;
    let chips = as_count_field(fields, "chips", 1)? as usize;
    if chips == 0 {
        return Err("chips must be at least 1".to_string());
    }
    let budget_cycles = match fields.get("budget_cycles") {
        None => None,
        Some(v) => match as_count(v, "budget_cycles")? {
            0 => return Err("budget_cycles must be positive".to_string()),
            n => Some(n),
        },
    };
    let budget_ms = match fields.get("budget_ms") {
        None => None,
        Some(v) => Some(as_count(v, "budget_ms")?),
    };
    let inject_panic = match str_field(fields, "inject", "")? {
        "" => false,
        "panic" => true,
        other => return Err(format!("unknown inject \"{other}\" (expected \"panic\")")),
    };
    config
        .validate()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(JobSpec {
        id,
        dataset,
        algo,
        config,
        chips,
        divisor,
        pr_iters,
        budget_cycles,
        budget_ms,
        inject_panic,
    })
}

fn str_field<'a>(
    fields: &'a BTreeMap<String, JsonValue>,
    key: &str,
    default: &'a str,
) -> Result<&'a str, String> {
    match fields.get(key) {
        None => Ok(default),
        Some(JsonValue::Str(s)) => Ok(s),
        Some(JsonValue::Num(_)) => Err(format!("field \"{key}\" must be a string")),
    }
}

fn as_count(value: &JsonValue, key: &str) -> Result<u64, String> {
    match value.as_f64() {
        Some(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Ok(v as u64),
        _ => Err(format!("field \"{key}\" must be a non-negative integer")),
    }
}

fn as_count_field(
    fields: &BTreeMap<String, JsonValue>,
    key: &str,
    default: u64,
) -> Result<u64, String> {
    match fields.get(key) {
        None => Ok(default),
        Some(v) => as_count(v, key),
    }
}

fn opt_i64(fields: &BTreeMap<String, JsonValue>, key: &str, default: i64) -> Result<i64, String> {
    match fields.get(key) {
        None => Ok(default),
        Some(v) => match v.as_f64() {
            Some(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Ok(f as i64),
            _ => Err(format!("field \"{key}\" must be an integer")),
        },
    }
}

fn parse_dataset(s: &str) -> Result<Dataset, String> {
    let lower = s.to_ascii_lowercase();
    for ds in Dataset::ALL {
        if ds.spec().name.to_ascii_lowercase() == lower || ds.abbrev().to_ascii_lowercase() == lower
        {
            return Ok(ds);
        }
    }
    Err(format!(
        "unknown dataset \"{s}\" (expected a Table 2 name or abbreviation)"
    ))
}

fn parse_algo(s: &str) -> Result<Algo, String> {
    let lower = s.to_ascii_lowercase();
    for algo in Algo::ALL {
        if algo.label().to_ascii_lowercase() == lower {
            return Ok(algo);
        }
    }
    Err(format!(
        "unknown algo \"{s}\" (expected one of bfs, sssp, sswp, pr, wcc, msbfs)"
    ))
}

fn parse_config(s: &str) -> Result<AcceleratorConfig, String> {
    match s.to_ascii_lowercase().as_str() {
        "higraph" => Ok(AcceleratorConfig::higraph()),
        "higraph-mini" | "higraph_mini" => Ok(AcceleratorConfig::higraph_mini()),
        "graphdyns" => Ok(AcceleratorConfig::graphdyns()),
        _ => Err(format!(
            "unknown config \"{s}\" (expected higraph, higraph-mini, or graphdyns)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(id: &str, extra: &str) -> String {
        if extra.is_empty() {
            format!("{{\"op\": \"submit\", \"id\": \"{id}\"}}")
        } else {
            format!("{{\"op\": \"submit\", \"id\": \"{id}\", {extra}}}")
        }
    }

    /// A collision-free scratch path under the target dir (no tempfile
    /// crate in this hermetic workspace).
    fn scratch_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "higraph-serve-test-{}-{tag}-{n}.journal",
            std::process::id()
        ))
    }

    fn cleanup(path: &std::path::Path) {
        let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
        let stem = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
        if let Ok(entries) = std::fs::read_dir(dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                if name.to_str().is_some_and(|n| n.starts_with(stem)) {
                    let _ = std::fs::remove_file(e.path());
                }
            }
        }
    }

    #[test]
    fn submit_run_round_trip() {
        let mut s = ServeSession::new();
        let out = s.handle_line(&submit("a", "\"algo\": \"wcc\", \"divisor\": 16"));
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("\"event\": \"queued\""), "{out:?}");
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("\"id\": \"a\""), "{out:?}");
        assert!(out[0].contains("\"status\": \"ok\""), "{out:?}");
        assert!(out[0].contains("\"memo_hit\": 0"), "{out:?}");
    }

    #[test]
    fn duplicate_submission_hits_the_memo() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", "\"algo\": \"bfs\""));
        s.handle_line(&submit("b", "\"algo\": \"bfs\""));
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("\"memo_hit\": 0"), "{out:?}");
        assert!(out[1].contains("\"id\": \"b\""), "{out:?}");
        assert!(out[1].contains("\"memo_hit\": 1"), "{out:?}");
        assert_eq!(s.memo_hits(), 1);
        // cached and fresh cycles agree
        let cycles = |line: &str| {
            line.split("\"cycles\": ")
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap()
        };
        assert_eq!(cycles(&out[0]), cycles(&out[1]));
    }

    #[test]
    fn different_name_same_behaviour_still_hits_memo() {
        // The memo key uses the canonical encoding, not the name label —
        // and distinguishes genuinely different configs.
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", "\"config\": \"higraph\""));
        s.handle_line(&submit("b", "\"config\": \"graphdyns\""));
        s.handle_line(&submit("c", "\"config\": \"higraph\""));
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 3);
        let hits: Vec<bool> = out.iter().map(|l| l.contains("\"memo_hit\": 1")).collect();
        assert_eq!(hits, [false, false, true], "{out:?}");
    }

    #[test]
    fn priority_orders_execution_fifo_within_level() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("low", "\"priority\": 1, \"algo\": \"bfs\""));
        s.handle_line(&submit("hi1", "\"priority\": 5, \"algo\": \"wcc\""));
        s.handle_line(&submit("hi2", "\"priority\": 5, \"algo\": \"pr\""));
        let out = s.handle_line("{\"op\": \"run\"}");
        let order: Vec<&str> = out
            .iter()
            .map(|l| {
                l.split("\"id\": \"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap()
            })
            .collect();
        assert_eq!(order, ["hi1", "hi2", "low"], "{out:?}");
    }

    #[test]
    fn cancel_removes_queued_jobs_only() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", ""));
        s.handle_line(&submit("c", ""));
        let out = s.handle_line("{\"op\": \"cancel\", \"id\": \"c\"}");
        assert!(out[0].contains("\"event\": \"cancelled\""), "{out:?}");
        assert!(out[0].contains("\"id\": \"c\""), "{out:?}");
        assert_eq!(s.queue_len(), 1);
        // cancelling an unknown job is an error, not a crash
        let out = s.handle_line("{\"op\": \"cancel\", \"id\": \"zzz\"}");
        assert!(out[0].contains("\"event\": \"error\""), "{out:?}");
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 1, "only \"a\" remains: {out:?}");
        assert!(out[0].contains("\"id\": \"a\""));
    }

    #[test]
    fn malformed_input_produces_error_events() {
        let mut s = ServeSession::new();
        for bad in [
            "not json",
            "{\"op\": \"submit\"}",     // missing id
            "{\"op\": \"frobnicate\"}", // unknown op
            "{\"id\": \"a\"}",          // missing op
            "{\"op\": \"submit\", \"id\": \"a\", \"divisor\": 3}", // not a power of two
            "{\"op\": \"submit\", \"id\": \"a\", \"dataset\": \"nope\"}",
            "{\"op\": \"submit\", \"id\": \"a\", \"algo\": \"dijkstra\"}",
            "{\"op\": \"submit\", \"id\": \"a\", \"chips\": 0}",
            "{\"op\": \"submit\", \"id\": \"a\", \"budget_cycles\": 0}",
            "{\"op\": \"submit\", \"id\": \"a\", \"inject\": \"zap\"}",
            "{\"op\": \"resume\", \"id\": \"a\"}", // nothing parked
        ] {
            let out = s.handle_line(bad);
            assert_eq!(out.len(), 1, "{bad}");
            assert!(out[0].contains("\"event\": \"error\""), "{bad} -> {out:?}");
        }
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn shutdown_flushes_and_marks_session_done() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", ""));
        let out = s.handle_line("{\"op\": \"shutdown\"}");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].contains("\"id\": \"a\""));
        assert!(out[1].contains("\"event\": \"bye\""));
        assert!(out[1].contains("\"completed\": 1"));
        assert!(s.shutdown_requested());
    }

    #[test]
    fn stats_reports_counters() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", ""));
        let out = s.handle_line("{\"op\": \"stats\"}");
        assert!(out[0].contains("\"queued\": 1"), "{out:?}");
        assert!(out[0].contains("\"memo_hits\": 0"), "{out:?}");
        assert!(out[0].contains("\"memo_evictions\": 0"), "{out:?}");
        assert!(out[0].contains("\"parked\": 0"), "{out:?}");
    }

    #[test]
    fn budget_parks_then_resume_matches_uninterrupted_run() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", "\"algo\": \"wcc\", \"budget_cycles\": 1"));
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("\"event\": \"parked\""), "{out:?}");
        assert_eq!(s.parked_len(), 1);
        // Parked ids stay reserved.
        let out = s.handle_line(&submit("a", ""));
        assert!(out[0].contains("\"event\": \"error\""), "{out:?}");
        let out = s.handle_line("{\"op\": \"resume\", \"id\": \"a\"}");
        assert!(out[0].contains("\"event\": \"resuming\""), "{out:?}");
        let out = s.handle_line("{\"op\": \"run\"}");
        assert!(out[0].contains("\"status\": \"ok\""), "{out:?}");
        assert!(out[0].contains("\"memo_hit\": 0"), "{out:?}");
        // The resumed result memoizes under the plain key: an
        // uninterrupted run of the same job is a hit with equal cycles.
        s.handle_line(&submit("b", "\"algo\": \"wcc\""));
        let fresh = s.handle_line("{\"op\": \"run\"}");
        assert!(fresh[0].contains("\"memo_hit\": 1"), "{fresh:?}");
        let cycles = |line: &str| {
            line.split("\"cycles\": ")
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap()
        };
        assert_eq!(cycles(&out[0]), cycles(&fresh[0]));
    }

    #[test]
    fn zero_wall_clock_budget_parks_before_the_first_cycle() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("slow", "\"budget_ms\": 0"));
        let out = s.handle_line("{\"op\": \"run\"}");
        assert!(out[0].contains("\"event\": \"parked\""), "{out:?}");
        assert!(out[0].contains("\"cycles\": 0"), "{out:?}");
        s.handle_line("{\"op\": \"resume\", \"id\": \"slow\"}");
        let out = s.handle_line("{\"op\": \"run\"}");
        assert!(out[0].contains("\"status\": \"ok\""), "{out:?}");
    }

    #[test]
    fn injected_panic_is_isolated_and_the_session_survives() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("boom", "\"inject\": \"panic\""));
        s.handle_line(&submit("after", "\"algo\": \"bfs\""));
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].contains("\"event\": \"failed\""), "{out:?}");
        assert!(out[0].contains("\"id\": \"boom\""), "{out:?}");
        // The panic payload's own message must reach the event — not
        // the generic fallback (regression: `&Box<dyn Any>` coercion).
        assert!(out[0].contains("injected panic"), "{out:?}");
        assert!(out[1].contains("\"status\": \"ok\""), "{out:?}");
        let stats = s.handle_line("{\"op\": \"stats\"}");
        assert!(stats[0].contains("\"failed\": 1"), "{stats:?}");
        assert!(stats[0].contains("\"completed\": 1"), "{stats:?}");
    }

    #[test]
    fn registry_cancel_reaches_a_queued_job_cooperatively() {
        // Simulates the binary's reader thread cancelling through the
        // shared registry while the session thread drains the queue.
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", ""));
        let controls = s.controls();
        controls.lock().unwrap()["a"].request_cancel();
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("\"event\": \"cancelled\""), "{out:?}");
        let stats = s.handle_line("{\"op\": \"stats\"}");
        assert!(stats[0].contains("\"cancelled\": 1"), "{stats:?}");
    }

    #[test]
    fn cancel_discards_a_parked_job() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", "\"budget_cycles\": 1"));
        s.handle_line("{\"op\": \"run\"}");
        assert_eq!(s.parked_len(), 1);
        let out = s.handle_line("{\"op\": \"cancel\", \"id\": \"a\"}");
        assert!(out[0].contains("\"event\": \"cancelled\""), "{out:?}");
        assert!(out[0].contains("\"stage\": \"parked\""), "{out:?}");
        assert_eq!(s.parked_len(), 0);
        // The id is free again.
        let out = s.handle_line(&submit("a", ""));
        assert!(out[0].contains("\"event\": \"queued\""), "{out:?}");
    }

    #[test]
    fn halt_leaves_the_queue_unflushed() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", ""));
        let out = s.handle_line("{\"op\": \"halt\"}");
        assert!(out[0].contains("\"event\": \"halting\""), "{out:?}");
        assert!(s.halt_requested());
        assert_eq!(s.queue_len(), 1, "halt must not run the queue");
    }

    #[test]
    fn journal_recovery_requeues_lost_work() {
        let path = scratch_path("recover");
        {
            let (mut s, events) = ServeSession::with_journal(&path);
            assert!(events.is_empty(), "fresh journal recovers nothing");
            s.handle_line(&submit("done", ""));
            s.handle_line(&submit("lost", "\"algo\": \"wcc\""));
            let out = s.handle_line("{\"op\": \"run\"}");
            assert_eq!(out.len(), 2, "{out:?}");
            // Re-accept one more job, then crash without running it.
            s.handle_line(&submit("late", "\"algo\": \"pr\""));
            s.handle_line("{\"op\": \"halt\"}");
            // Session dropped here without flushing — the crash.
        }
        let (mut s, events) = ServeSession::with_journal(&path);
        let text = events.join("\n");
        assert!(
            text.contains("\"event\": \"recovered\", \"id\": \"late\""),
            "{events:?}"
        );
        assert!(!text.contains("\"id\": \"done\""), "{events:?}");
        assert!(!text.contains("\"id\": \"lost\""), "{events:?}");
        assert_eq!(s.queue_len(), 1);
        let out = s.handle_line("{\"op\": \"run\"}");
        assert!(out[0].contains("\"id\": \"late\""), "{out:?}");
        assert!(out[0].contains("\"status\": \"ok\""), "{out:?}");
        cleanup(&path);
    }

    #[test]
    fn journal_recovery_resumes_from_the_parked_checkpoint() {
        let path = scratch_path("parked");
        let full_cycles;
        {
            // Reference: the same job uninterrupted.
            let mut r = ServeSession::new();
            r.handle_line(&submit("ref", "\"algo\": \"wcc\""));
            let out = r.handle_line("{\"op\": \"run\"}");
            full_cycles = out[0]
                .split("\"cycles\": ")
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap();
        }
        {
            let (mut s, _) = ServeSession::with_journal(&path);
            s.handle_line(&submit("job", "\"algo\": \"wcc\", \"budget_cycles\": 1"));
            let out = s.handle_line("{\"op\": \"run\"}");
            assert!(out[0].contains("\"event\": \"parked\""), "{out:?}");
            // Crash with the job parked: sidecar + no `finished` record.
        }
        let (mut s, events) = ServeSession::with_journal(&path);
        let text = events.join("\n");
        assert!(text.contains("\"event\": \"recovered\""), "{events:?}");
        assert!(text.contains("\"from_checkpoint\": 1"), "{events:?}");
        let out = s.handle_line("{\"op\": \"run\"}");
        assert!(out[0].contains("\"status\": \"ok\""), "{out:?}");
        // Bit-identical continuation: resumed-from-disk equals the
        // uninterrupted reference run.
        assert!(
            out[0].contains(&format!("\"cycles\": {full_cycles}")),
            "resumed {out:?} vs uninterrupted {full_cycles}"
        );
        cleanup(&path);
    }
}
