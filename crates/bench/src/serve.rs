//! The resident job service behind the `higraph-serve` binary.
//!
//! A session speaks newline-delimited flat JSON on stdin/stdout (the
//! [`crate::report`] writer/parser — no serde in this hermetic
//! workspace). Each input line is one operation object; each output line
//! is one event object. See `docs/serve.md` for the protocol grammar.
//!
//! # Operations
//!
//! * `{"op": "submit", "id": …, …}` — queue a simulation job. Fields
//!   beyond `id` are optional with defaults: `dataset` (name or paper
//!   abbreviation, default `vote`), `algo` (default `bfs`), `config`
//!   (preset `higraph` | `higraph-mini` | `graphdyns`), `divisor`
//!   (power-of-two dataset scaling, default 16), `pr_iters` (default 3),
//!   `chips` (default 1), `priority` (higher runs first, default 0), and
//!   `cache_kb` (enables the HBM memory model with that cache size).
//! * `{"op": "cancel", "id": …}` — remove a still-queued job.
//! * `{"op": "run"}` — execute everything queued, highest priority
//!   first (FIFO within a priority level).
//! * `{"op": "stats"}` — emit queue/memo/pool counters.
//! * `{"op": "shutdown"}` — run the remaining queue, say goodbye.
//!
//! EOF on stdin behaves like `shutdown`: pending jobs are flushed, the
//! process exits cleanly.
//!
//! # Memoization and determinism
//!
//! Results are memoized under the key *(graph content hash,
//! [`AcceleratorConfig::canonical_encoding`], chips, pr_iters, algo)*.
//! This is sound **because** every run is bit-deterministic: cycle
//! counts and `Metrics` do not depend on the worker count, steal order,
//! or co-scheduled jobs (`tests/thread_determinism.rs`), so a cached
//! result is indistinguishable from a re-run. Stalled configurations are
//! memoized too — re-submitting a known-bad design point fails instantly
//! instead of burning another stall-guard's worth of host time.
//!
//! Jobs execute through [`Algo::run_sharded`], whose lock-step drains
//! lease idle workers from the shared `higraph_pool::CorePool` — a
//! service session and any in-process batch work share the host without
//! oversubscription.

use crate::report::{parse_flat_json_values, write_json_number, write_json_string, JsonValue};
use crate::workload::Algo;
use higraph::prelude::*;
use std::collections::BTreeMap;

/// A memoized job outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
enum MemoEntry {
    /// Completed: aggregate cycle count and throughput.
    Ok { cycles: u64, gteps: f64 },
    /// The configuration stalled its lock-step drain.
    Stalled,
}

/// One parsed, validated submission.
#[derive(Debug, Clone)]
struct JobSpec {
    id: String,
    dataset: Dataset,
    algo: Algo,
    config: AcceleratorConfig,
    chips: usize,
    divisor: u32,
    pr_iters: u32,
}

/// A queued job with its scheduling key.
#[derive(Debug, Clone)]
struct Pending {
    seq: u64,
    priority: i64,
    spec: JobSpec,
}

/// A resident job-service session: the state machine the `higraph-serve`
/// binary drives line by line, exposed as a library so tests can
/// interleave operations (e.g. cancel between [`ServeSession::step`]
/// calls) without a subprocess.
#[derive(Default)]
pub struct ServeSession {
    /// Built graphs with their content hashes, keyed by (dataset, divisor).
    graphs: BTreeMap<(Dataset, u32), (Csr, u64)>,
    /// Memoized outcomes, keyed by the full job identity.
    memo: BTreeMap<String, MemoEntry>,
    memo_hits: u64,
    queue: Vec<Pending>,
    seq: u64,
    completed: u64,
    shutdown: bool,
}

impl ServeSession {
    /// A fresh session with empty queue and caches.
    pub fn new() -> Self {
        ServeSession::default()
    }

    /// True once a `shutdown` operation has been processed; the binary
    /// exits its read loop.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Jobs still waiting to run.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Memo-cache hits so far.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Processes one input line, returning the event lines it produced.
    pub fn handle_line(&mut self, line: &str) -> Vec<String> {
        let fields = match parse_flat_json_values(line) {
            Ok(f) => f,
            Err(e) => return vec![error_line(None, &format!("bad JSON: {e}"))],
        };
        let op = match fields.get("op").and_then(JsonValue::as_str) {
            Some(op) => op.to_string(),
            None => return vec![error_line(None, "missing string field \"op\"")],
        };
        match op.as_str() {
            "submit" => self.submit(&fields),
            "cancel" => self.cancel(&fields),
            "run" => self.run_queue(),
            "stats" => vec![self.stats_line()],
            "shutdown" => {
                let mut out = self.run_queue();
                out.push(format!(
                    "{{\"event\": \"bye\", \"completed\": {}}}",
                    self.completed
                ));
                self.shutdown = true;
                out
            }
            other => vec![error_line(None, &format!("unknown op \"{other}\""))],
        }
    }

    /// Flushes the remaining queue (the EOF path of the binary).
    pub fn flush(&mut self) -> Vec<String> {
        self.run_queue()
    }

    fn submit(&mut self, fields: &BTreeMap<String, JsonValue>) -> Vec<String> {
        let id = match fields.get("id").and_then(JsonValue::as_str) {
            Some(id) if !id.is_empty() => id.to_string(),
            _ => {
                return vec![error_line(
                    None,
                    "submit requires a non-empty string \"id\"",
                )]
            }
        };
        if self.queue.iter().any(|p| p.spec.id == id) {
            return vec![error_line(
                Some(&id),
                &format!("job \"{id}\" is already queued"),
            )];
        }
        let spec = match parse_spec(id.clone(), fields) {
            Ok(spec) => spec,
            Err(msg) => return vec![error_line(Some(&id), &msg)],
        };
        let priority = match opt_i64(fields, "priority", 0) {
            Ok(p) => p,
            Err(msg) => return vec![error_line(Some(&id), &msg)],
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Pending {
            seq,
            priority,
            spec,
        });
        let mut s = String::from("{\"event\": \"queued\", \"id\": ");
        write_json_string(&mut s, &id);
        s.push_str(&format!(", \"priority\": {priority}}}"));
        vec![s]
    }

    fn cancel(&mut self, fields: &BTreeMap<String, JsonValue>) -> Vec<String> {
        let id = match fields.get("id").and_then(JsonValue::as_str) {
            Some(id) => id.to_string(),
            None => return vec![error_line(None, "cancel requires a string \"id\"")],
        };
        let before = self.queue.len();
        self.queue.retain(|p| p.spec.id != id);
        if self.queue.len() == before {
            return vec![error_line(
                Some(&id),
                &format!("job \"{id}\" is not queued (already run, cancelled, or never seen)"),
            )];
        }
        let mut s = String::from("{\"event\": \"cancelled\", \"id\": ");
        write_json_string(&mut s, &id);
        s.push('}');
        vec![s]
    }

    /// Executes the single highest-priority queued job (FIFO within a
    /// priority level) and returns its result line; `None` when the
    /// queue is empty. Exposed so callers can interleave cancellation
    /// with execution.
    pub fn step(&mut self) -> Option<String> {
        let best = self
            .queue
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| (p.priority, std::cmp::Reverse(p.seq)))
            .map(|(i, _)| i)?;
        let pending = self.queue.remove(best);
        Some(self.execute(&pending.spec))
    }

    fn run_queue(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(line) = self.step() {
            out.push(line);
        }
        out
    }

    fn execute(&mut self, spec: &JobSpec) -> String {
        let (graph, hash) = self
            .graphs
            .entry((spec.dataset, spec.divisor))
            .or_insert_with(|| {
                let g = spec.dataset.build_scaled(spec.divisor);
                let h = g.content_hash();
                (g, h)
            });
        let key = format!(
            "{:016x}|{}|chips={}|pr={}|{}",
            hash,
            spec.algo.label(),
            spec.chips,
            spec.pr_iters,
            spec.config.canonical_encoding()
        );
        if let Some(entry) = self.memo.get(&key) {
            self.memo_hits += 1;
            self.completed += 1;
            return result_line(&spec.id, entry, true);
        }
        let entry = match spec.algo.run_sharded(
            &spec.config,
            ShardConfig::new(spec.chips),
            graph,
            spec.pr_iters,
        ) {
            Ok(summary) => MemoEntry::Ok {
                cycles: summary.metrics.cycles,
                gteps: summary.metrics.gteps(),
            },
            Err(_) => MemoEntry::Stalled,
        };
        self.memo.insert(key, entry);
        self.completed += 1;
        result_line(&spec.id, &entry, false)
    }

    fn stats_line(&self) -> String {
        let pool = higraph::pool::CorePool::global();
        let snap = pool.snapshot();
        format!(
            "{{\"event\": \"stats\", \"queued\": {}, \"completed\": {}, \"memo_entries\": {}, \
             \"memo_hits\": {}, \"pool_workers\": {}, \"pool_tasks_executed\": {}, \
             \"pool_lease_requests\": {}}}",
            self.queue.len(),
            self.completed,
            self.memo.len(),
            self.memo_hits,
            pool.workers(),
            snap.tasks_executed,
            snap.lease_requests,
        )
    }
}

/// Fixed-key-order result line: `event`, `id`, `status`, `memo_hit`,
/// then outcome fields — stable for line-oriented consumers (CI greps).
fn result_line(id: &str, entry: &MemoEntry, memo_hit: bool) -> String {
    let mut s = String::from("{\"event\": \"result\", \"id\": ");
    write_json_string(&mut s, id);
    match entry {
        MemoEntry::Ok { cycles, gteps } => {
            s.push_str(&format!(
                ", \"status\": \"ok\", \"memo_hit\": {}, \"cycles\": {cycles}, \"gteps\": ",
                u8::from(memo_hit)
            ));
            write_json_number(&mut s, *gteps);
        }
        MemoEntry::Stalled => {
            s.push_str(&format!(
                ", \"status\": \"stalled\", \"memo_hit\": {}, \"cycles\": 0",
                u8::from(memo_hit)
            ));
        }
    }
    s.push('}');
    s
}

fn error_line(id: Option<&str>, message: &str) -> String {
    let mut s = String::from("{\"event\": \"error\"");
    if let Some(id) = id {
        s.push_str(", \"id\": ");
        write_json_string(&mut s, id);
    }
    s.push_str(", \"message\": ");
    write_json_string(&mut s, message);
    s.push('}');
    s
}

fn parse_spec(id: String, fields: &BTreeMap<String, JsonValue>) -> Result<JobSpec, String> {
    let dataset = parse_dataset(str_field(fields, "dataset", "vote")?)?;
    let algo = parse_algo(str_field(fields, "algo", "bfs")?)?;
    let mut config = parse_config(str_field(fields, "config", "higraph")?)?;
    if let Some(v) = fields.get("cache_kb") {
        let kb = as_count(v, "cache_kb")?;
        if kb == 0 {
            return Err("cache_kb must be positive".to_string());
        }
        config.memory = Some(MemoryConfig::hbm2().with_cache_kb(kb as usize));
    }
    let divisor = as_count_field(fields, "divisor", 16)? as u32;
    if divisor == 0 || !divisor.is_power_of_two() {
        return Err(format!("divisor {divisor} must be a power of two >= 1"));
    }
    let pr_iters = as_count_field(fields, "pr_iters", 3)? as u32;
    let chips = as_count_field(fields, "chips", 1)? as usize;
    if chips == 0 {
        return Err("chips must be at least 1".to_string());
    }
    config
        .validate()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(JobSpec {
        id,
        dataset,
        algo,
        config,
        chips,
        divisor,
        pr_iters,
    })
}

fn str_field<'a>(
    fields: &'a BTreeMap<String, JsonValue>,
    key: &str,
    default: &'a str,
) -> Result<&'a str, String> {
    match fields.get(key) {
        None => Ok(default),
        Some(JsonValue::Str(s)) => Ok(s),
        Some(JsonValue::Num(_)) => Err(format!("field \"{key}\" must be a string")),
    }
}

fn as_count(value: &JsonValue, key: &str) -> Result<u64, String> {
    match value.as_f64() {
        Some(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Ok(v as u64),
        _ => Err(format!("field \"{key}\" must be a non-negative integer")),
    }
}

fn as_count_field(
    fields: &BTreeMap<String, JsonValue>,
    key: &str,
    default: u64,
) -> Result<u64, String> {
    match fields.get(key) {
        None => Ok(default),
        Some(v) => as_count(v, key),
    }
}

fn opt_i64(fields: &BTreeMap<String, JsonValue>, key: &str, default: i64) -> Result<i64, String> {
    match fields.get(key) {
        None => Ok(default),
        Some(v) => match v.as_f64() {
            Some(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Ok(f as i64),
            _ => Err(format!("field \"{key}\" must be an integer")),
        },
    }
}

fn parse_dataset(s: &str) -> Result<Dataset, String> {
    let lower = s.to_ascii_lowercase();
    for ds in Dataset::ALL {
        if ds.spec().name.to_ascii_lowercase() == lower || ds.abbrev().to_ascii_lowercase() == lower
        {
            return Ok(ds);
        }
    }
    Err(format!(
        "unknown dataset \"{s}\" (expected a Table 2 name or abbreviation)"
    ))
}

fn parse_algo(s: &str) -> Result<Algo, String> {
    let lower = s.to_ascii_lowercase();
    for algo in Algo::ALL {
        if algo.label().to_ascii_lowercase() == lower {
            return Ok(algo);
        }
    }
    Err(format!(
        "unknown algo \"{s}\" (expected one of bfs, sssp, sswp, pr, wcc, msbfs)"
    ))
}

fn parse_config(s: &str) -> Result<AcceleratorConfig, String> {
    match s.to_ascii_lowercase().as_str() {
        "higraph" => Ok(AcceleratorConfig::higraph()),
        "higraph-mini" | "higraph_mini" => Ok(AcceleratorConfig::higraph_mini()),
        "graphdyns" => Ok(AcceleratorConfig::graphdyns()),
        _ => Err(format!(
            "unknown config \"{s}\" (expected higraph, higraph-mini, or graphdyns)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(id: &str, extra: &str) -> String {
        if extra.is_empty() {
            format!("{{\"op\": \"submit\", \"id\": \"{id}\"}}")
        } else {
            format!("{{\"op\": \"submit\", \"id\": \"{id}\", {extra}}}")
        }
    }

    #[test]
    fn submit_run_round_trip() {
        let mut s = ServeSession::new();
        let out = s.handle_line(&submit("a", "\"algo\": \"wcc\", \"divisor\": 16"));
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("\"event\": \"queued\""), "{out:?}");
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("\"id\": \"a\""), "{out:?}");
        assert!(out[0].contains("\"status\": \"ok\""), "{out:?}");
        assert!(out[0].contains("\"memo_hit\": 0"), "{out:?}");
    }

    #[test]
    fn duplicate_submission_hits_the_memo() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", "\"algo\": \"bfs\""));
        s.handle_line(&submit("b", "\"algo\": \"bfs\""));
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("\"memo_hit\": 0"), "{out:?}");
        assert!(out[1].contains("\"id\": \"b\""), "{out:?}");
        assert!(out[1].contains("\"memo_hit\": 1"), "{out:?}");
        assert_eq!(s.memo_hits(), 1);
        // cached and fresh cycles agree
        let cycles = |line: &str| {
            line.split("\"cycles\": ")
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap()
        };
        assert_eq!(cycles(&out[0]), cycles(&out[1]));
    }

    #[test]
    fn different_name_same_behaviour_still_hits_memo() {
        // The memo key uses the canonical encoding, not the name label —
        // and distinguishes genuinely different configs.
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", "\"config\": \"higraph\""));
        s.handle_line(&submit("b", "\"config\": \"graphdyns\""));
        s.handle_line(&submit("c", "\"config\": \"higraph\""));
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 3);
        let hits: Vec<bool> = out.iter().map(|l| l.contains("\"memo_hit\": 1")).collect();
        assert_eq!(hits, [false, false, true], "{out:?}");
    }

    #[test]
    fn priority_orders_execution_fifo_within_level() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("low", "\"priority\": 1, \"algo\": \"bfs\""));
        s.handle_line(&submit("hi1", "\"priority\": 5, \"algo\": \"wcc\""));
        s.handle_line(&submit("hi2", "\"priority\": 5, \"algo\": \"pr\""));
        let out = s.handle_line("{\"op\": \"run\"}");
        let order: Vec<&str> = out
            .iter()
            .map(|l| {
                l.split("\"id\": \"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap()
            })
            .collect();
        assert_eq!(order, ["hi1", "hi2", "low"], "{out:?}");
    }

    #[test]
    fn cancel_removes_queued_jobs_only() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", ""));
        s.handle_line(&submit("c", ""));
        let out = s.handle_line("{\"op\": \"cancel\", \"id\": \"c\"}");
        assert!(out[0].contains("\"event\": \"cancelled\""), "{out:?}");
        assert!(out[0].contains("\"id\": \"c\""), "{out:?}");
        assert_eq!(s.queue_len(), 1);
        // cancelling an unknown job is an error, not a crash
        let out = s.handle_line("{\"op\": \"cancel\", \"id\": \"zzz\"}");
        assert!(out[0].contains("\"event\": \"error\""), "{out:?}");
        let out = s.handle_line("{\"op\": \"run\"}");
        assert_eq!(out.len(), 1, "only \"a\" remains: {out:?}");
        assert!(out[0].contains("\"id\": \"a\""));
    }

    #[test]
    fn malformed_input_produces_error_events() {
        let mut s = ServeSession::new();
        for bad in [
            "not json",
            "{\"op\": \"submit\"}",     // missing id
            "{\"op\": \"frobnicate\"}", // unknown op
            "{\"id\": \"a\"}",          // missing op
            "{\"op\": \"submit\", \"id\": \"a\", \"divisor\": 3}", // not a power of two
            "{\"op\": \"submit\", \"id\": \"a\", \"dataset\": \"nope\"}",
            "{\"op\": \"submit\", \"id\": \"a\", \"algo\": \"dijkstra\"}",
            "{\"op\": \"submit\", \"id\": \"a\", \"chips\": 0}",
        ] {
            let out = s.handle_line(bad);
            assert_eq!(out.len(), 1, "{bad}");
            assert!(out[0].contains("\"event\": \"error\""), "{bad} -> {out:?}");
        }
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn shutdown_flushes_and_marks_session_done() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", ""));
        let out = s.handle_line("{\"op\": \"shutdown\"}");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].contains("\"id\": \"a\""));
        assert!(out[1].contains("\"event\": \"bye\""));
        assert!(out[1].contains("\"completed\": 1"));
        assert!(s.shutdown_requested());
    }

    #[test]
    fn stats_reports_counters() {
        let mut s = ServeSession::new();
        s.handle_line(&submit("a", ""));
        let out = s.handle_line("{\"op\": \"stats\"}");
        assert!(out[0].contains("\"queued\": 1"), "{out:?}");
        assert!(out[0].contains("\"memo_hits\": 0"), "{out:?}");
    }
}
