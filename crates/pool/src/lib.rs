//! The unified host-core pool behind both of HiGraph's parallelism
//! layers (see `docs/performance.md` and `docs/serve.md`).
//!
//! One process owns one [`CorePool`] ([`CorePool::global`]): a fixed set
//! of resident worker threads, each with its own task deque, stealing
//! from its peers when its deque runs dry. Two execution primitives sit
//! on top:
//!
//! * [`CorePool::run_ordered`] — batch-level parallelism. The caller
//!   submits `n` independent items; worker *runner tasks* plus the
//!   calling thread drain a shared cursor, results land in submission
//!   order, and the call returns only when every item is done. This is
//!   what [`BatchRunner`](../higraph_accel/struct.BatchRunner.html)
//!   executes sweeps through.
//! * [`CoreLease`] / [`CoreLease::run_team`] — intra-run parallelism.
//!   A running drain *leases* currently-idle workers, hands each one a
//!   long-lived team task (a lock-step drain participant), runs its own
//!   coordinator role on the calling thread, and releases the workers
//!   when the drain completes. Leases only ever claim idle workers, so
//!   batch jobs and chip drains compose without oversubscription —
//!   except [`CorePool::lease_exact`], which tops a short grant up with
//!   temporary threads for callers that *require* a worker count (the
//!   explicit `ShardedEngine::set_threads(Some(n))` override that
//!   `tests/thread_determinism.rs` exercises).
//!
//! # Determinism contract
//!
//! The pool schedules *host work*; it never touches simulated state.
//! Every caller in this workspace (batch sweeps, lock-step drains, the
//! `higraph-serve` queue) produces bit-identical results regardless of
//! worker count, steal order, or co-scheduled jobs — `run_ordered`
//! preserves item order, and team protocols carry their own barriers.
//!
//! # Soundness
//!
//! Tasks borrow caller state (`'env` closures) but run on `'static`
//! threads, so the pool erases lifetimes — the one `unsafe` surface of
//! the crate. It is sound because every submission path joins its scope
//! latch before returning, on panic paths included, and no unjoined
//! handle is ever exposed (the workspace also denies `mem::forget` via
//! clippy). See the `SAFETY:` comments at the single transmute site.

mod lease;
mod stats;

pub use lease::{CoreLease, TeamTask};
pub use stats::PoolSnapshot;

use stats::PoolCounters;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
// lint:allow(determinism): wall-clock only feeds the host-side occupancy counters; simulated state never reads it
use std::time::Instant;

/// Worker availability states (one `AtomicU8` per worker).
const IDLE: u8 = 0;
/// Executing (or about to pop) a queued pool task; not leasable.
const BUSY: u8 = 1;
/// Reserved by a [`CoreLease`]; serves only that lease's team tasks.
const LEASED: u8 = 2;

/// How long an idle or leased worker sleeps between wake checks; the
/// condition variables are notified on every state change, so this is a
/// lost-wakeup backstop, not the scheduling latency.
const PARK_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(2);

/// A lifetime-erased queued job.
type ErasedJob = Box<dyn FnOnce() + Send + 'static>;

/// One queued pool task: the job plus the identity of the scope that
/// submitted it (so the submitter can reclaim still-queued tasks of its
/// own scope while waiting, bounding every join to in-flight work).
struct Task {
    scope_id: usize,
    job: ErasedJob,
}

/// Completion latch + first-panic store shared by one submission scope.
pub(crate) struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    pub(crate) fn new(tasks: usize) -> Arc<Self> {
        Arc::new(ScopeState {
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock(&self.panic).take()
    }

    pub(crate) fn finish_one(&self) {
        let mut remaining = lock(&self.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every task of this scope has finished.
    pub(crate) fn wait(&self) {
        let mut remaining = lock(&self.remaining);
        while *remaining > 0 {
            remaining = match self.done.wait(remaining) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// Locks a mutex, recovering from poisoning: the pool's shared state
/// (counters, result slots, queues) stays valid across a payload panic,
/// which the wrappers catch and re-raise at the join point anyway.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Erases a scoped job's lifetime so it can run on a resident thread.
///
/// # Safety
///
/// The caller must join the job's scope latch before `'env` ends, on
/// every path including panics, so the job (and everything it borrows)
/// never outlives the borrowed environment.
// SAFETY: declaring the fn unsafe delegates the join-before-'env-ends
// obligation below to the call sites, which both wait on their
// ScopeState latch before returning.
unsafe fn erase_job<'env>(job: Box<dyn FnOnce() + Send + 'env>) -> ErasedJob {
    // SAFETY: only the lifetime parameter changes; the caller upholds
    // the join-before-'env-ends contract documented above (both call
    // sites wait on their ScopeState latch before returning).
    unsafe { std::mem::transmute(job) }
}

/// Per-worker shared state.
struct WorkerSlot {
    /// This worker's task deque: the owner pops the front, thieves pop
    /// the back.
    deque: Mutex<VecDeque<Task>>,
    /// [`IDLE`] / [`BUSY`] / [`LEASED`].
    mode: AtomicU8,
    /// Direct handoff slot for lease team tasks.
    direct: Mutex<Option<ErasedJob>>,
    /// Wakes a leased worker when a team task lands in `direct`.
    direct_cv: Condvar,
}

/// State shared between the pool handle and its workers.
struct Shared {
    slots: Vec<WorkerSlot>,
    /// Queued-but-unclaimed task count (parking predicate).
    pending: AtomicUsize,
    /// Round-robin cursor for task placement.
    next_push: AtomicUsize,
    shutdown: AtomicBool,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    counters: PoolCounters,
}

impl Shared {
    /// Pops a task for worker `me`: own deque first (front), then a
    /// rotating steal scan of the peers (back).
    fn find_task(&self, me: usize) -> Option<Task> {
        if let Some(task) = lock(&self.slots[me].deque).pop_front() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
            return Some(task);
        }
        let n = self.slots.len();
        for k in 1..n {
            let victim = (me + k) % n;
            if let Some(task) = lock(&self.slots[victim].deque).pop_back() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                self.counters.add(&self.counters.tasks_stolen, 1);
                return Some(task);
            }
        }
        None
    }

    fn wake_all(&self) {
        let _guard = lock(&self.sleep_lock);
        self.sleep_cv.notify_all();
    }
}

/// The resident worker loop.
fn worker_loop(shared: Arc<Shared>, me: usize) {
    let slot_mode = |shared: &Shared| shared.slots[me].mode.load(Ordering::SeqCst);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if slot_mode(&shared) == LEASED {
            serve_lease(&shared, me);
            continue;
        }
        // Claim BUSY before popping so a lease can never grab a worker
        // that is between claiming and running a task.
        if shared.slots[me]
            .mode
            .compare_exchange(IDLE, BUSY, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            continue; // just leased
        }
        match shared.find_task(me) {
            Some(task) => {
                // lint:allow(determinism): wall-clock only feeds the host-side occupancy counters; simulated state never reads it
                let started = Instant::now();
                (task.job)();
                shared.counters.add(
                    &shared.counters.busy_ns,
                    started.elapsed().as_nanos() as u64,
                );
                shared.counters.add(&shared.counters.tasks_executed, 1);
                shared.slots[me].mode.store(IDLE, Ordering::SeqCst);
            }
            None => {
                shared.slots[me].mode.store(IDLE, Ordering::SeqCst);
                let mut guard = lock(&shared.sleep_lock);
                while !shared.shutdown.load(Ordering::SeqCst)
                    && shared.pending.load(Ordering::SeqCst) == 0
                    && slot_mode(&shared) == IDLE
                {
                    guard = match shared.sleep_cv.wait_timeout(guard, PARK_TIMEOUT) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
            }
        }
    }
}

/// Serves a lease: runs direct team tasks until the lease releases this
/// worker (mode leaves [`LEASED`]).
fn serve_lease(shared: &Shared, me: usize) {
    let slot = &shared.slots[me];
    let mut direct = lock(&slot.direct);
    loop {
        if slot.mode.load(Ordering::SeqCst) != LEASED {
            return;
        }
        if let Some(job) = direct.take() {
            drop(direct);
            // lint:allow(determinism): wall-clock only feeds the host-side occupancy counters; simulated state never reads it
            let started = Instant::now();
            job();
            shared.counters.add(
                &shared.counters.busy_ns,
                started.elapsed().as_nanos() as u64,
            );
            shared.counters.add(&shared.counters.team_tasks, 1);
            direct = lock(&slot.direct);
        } else {
            direct = match slot.direct_cv.wait_timeout(direct, PARK_TIMEOUT) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// A fixed-size work-stealing pool of resident host threads.
///
/// Most code uses the process-wide [`CorePool::global`]; tests build
/// private pools with [`CorePool::new`] to pin the worker count.
pub struct CorePool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl CorePool {
    /// A pool with exactly `workers` resident threads. Zero workers is
    /// valid: every primitive then runs on the calling thread (and
    /// [`CorePool::lease_exact`] still oversubscribes on demand).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            slots: (0..workers)
                .map(|_| WorkerSlot {
                    deque: Mutex::new(VecDeque::new()),
                    mode: AtomicU8::new(IDLE),
                    direct: Mutex::new(None),
                    direct_cv: Condvar::new(),
                })
                .collect(),
            pending: AtomicUsize::new(0),
            next_push: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            counters: PoolCounters::default(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("higraph-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        CorePool {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide pool, created on first use with
    /// [`default_workers`] resident threads.
    pub fn global() -> &'static CorePool {
        static GLOBAL: OnceLock<CorePool> = OnceLock::new();
        GLOBAL.get_or_init(|| CorePool::new(default_workers()))
    }

    /// Resident worker threads (not counting submitting threads, which
    /// always participate in their own batches).
    pub fn workers(&self) -> usize {
        self.shared.slots.len()
    }

    /// A point-in-time copy of the pool's occupancy counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        self.shared.counters.snapshot()
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Queues one erased task, round-robin across worker deques.
    fn push_task(&self, task: Task) {
        let n = self.shared.slots.len();
        debug_assert!(n > 0, "push_task on a worker-less pool");
        let at = self.shared.next_push.fetch_add(1, Ordering::Relaxed) % n;
        lock(&self.shared.slots[at].deque).push_back(task);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.wake_all();
    }

    /// Reclaims and runs still-queued tasks of `scope_id` on the calling
    /// thread, so a join never waits on a task that no worker has
    /// started (e.g. when every worker is busy with other jobs).
    fn drain_scope(&self, scope_id: usize) {
        loop {
            let mut reclaimed = None;
            for slot in &self.shared.slots {
                let mut deque = lock(&slot.deque);
                if let Some(pos) = deque.iter().position(|t| t.scope_id == scope_id) {
                    reclaimed = deque.remove(pos);
                    break;
                }
            }
            match reclaimed {
                Some(task) => {
                    self.shared.pending.fetch_sub(1, Ordering::Relaxed);
                    (task.job)();
                    self.shared
                        .counters
                        .add(&self.shared.counters.tasks_inline, 1);
                }
                None => return,
            }
        }
    }

    /// Runs `f(0..n)` across the pool plus the calling thread and
    /// returns the results in index order — bit-identical to
    /// `(0..n).map(f).collect()` for any worker count or steal order.
    ///
    /// The call blocks until every item has completed; a panicking item
    /// finishes the batch's bookkeeping and then re-raises here.
    pub fn run_ordered<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let runners = self.workers().min(n.saturating_sub(1));
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let counters = &self.shared.counters;
        let body = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let r = f(i);
            *lock(&results[i]) = Some(r);
            counters.add(&counters.items_executed, 1);
        };
        if runners == 0 {
            body();
        } else {
            let scope = ScopeState::new(runners);
            for _ in 0..runners {
                let scope_task = Arc::clone(&scope);
                let body = &body;
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                        scope_task.record_panic(payload);
                    }
                    scope_task.finish_one();
                });
                // SAFETY: this scope's latch is joined via `scope.wait()`
                // below before `run_ordered` returns on every path
                // (including caller and runner panics), so the job never
                // outlives `f`, `results`, or `cursor`.
                let job = unsafe { erase_job(job) };
                self.push_task(Task {
                    scope_id: scope.id(),
                    job,
                });
            }
            let caller = catch_unwind(AssertUnwindSafe(&body));
            self.drain_scope(scope.id());
            scope.wait();
            if let Err(payload) = caller {
                resume_unwind(payload);
            }
            if let Some(payload) = scope.take_panic() {
                resume_unwind(payload);
            }
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("every index was claimed and completed")
            })
            .collect()
    }
}

impl Drop for CorePool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_all();
        for slot in &self.shared.slots {
            let _guard = lock(&slot.direct);
            slot.direct_cv.notify_all();
        }
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// The global pool's worker count: the host's available parallelism
/// minus one (the submitting thread always participates), overridable
/// with `HIGRAPH_POOL_THREADS`. Worker count is a host-performance knob
/// only — results are bit-identical for every value.
pub fn default_workers() -> usize {
    // lint:allow(determinism): host worker-count override, mirroring the rayon shim's RAYON_NUM_THREADS; results are worker-count-independent by the pool's contract
    if let Ok(value) = std::env::var("HIGRAPH_POOL_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.min(256);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ordered_matches_serial_for_any_worker_count() {
        let expect: Vec<u64> = (0..97u64).map(|i| i * i + 1).collect();
        for workers in [0usize, 1, 3, 8] {
            let pool = CorePool::new(workers);
            let got = pool.run_ordered(97, |i| (i as u64) * (i as u64) + 1);
            assert_eq!(got, expect, "{workers} workers");
        }
    }

    #[test]
    fn run_ordered_handles_empty_and_single() {
        let pool = CorePool::new(2);
        let empty: Vec<u32> = pool.run_ordered(0, |_| 0u32);
        assert!(empty.is_empty());
        assert_eq!(pool.run_ordered(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn run_ordered_propagates_item_panics() {
        let pool = CorePool::new(3);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run_ordered(16, |i| {
                assert!(i != 7, "boom");
                i
            })
        }));
        assert!(outcome.is_err());
        // the pool stays usable after a panicked batch
        assert_eq!(pool.run_ordered(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn nested_batches_complete() {
        let pool = Arc::new(CorePool::new(3));
        let inner_pool = Arc::clone(&pool);
        let out = pool.run_ordered(4, move |i| {
            inner_pool
                .run_ordered(4, |j| i * 10 + j)
                .iter()
                .sum::<usize>()
        });
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    fn counters_accumulate() {
        let pool = CorePool::new(2);
        let before = pool.snapshot();
        pool.run_ordered(64, |i| i);
        let after = pool.snapshot().since(&before);
        assert_eq!(after.items_executed, 64);
        assert!(after.occupancy(1_000_000_000, pool.workers()) >= 0.0);
    }

    #[test]
    fn default_workers_is_bounded() {
        assert!(default_workers() <= 256);
    }
}
