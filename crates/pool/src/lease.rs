//! Core leases: intra-run parallelism on top of the pool.
//!
//! A lock-step drain (the P-chips-on-P-threads protocol in
//! `higraph_accel::parallel`) needs *dedicated* participants for its
//! barrier cadence, not queued tasks that might wait behind other work.
//! [`CorePool::lease`] reserves currently-idle workers for exactly that:
//! a leased worker leaves the stealing rotation and serves only the
//! lease's team tasks until the lease drops. Because a lease can only
//! claim idle workers, chip drains and batch jobs share the host
//! gracefully — a core busy simulating one job is never yanked into
//! another job's drain; it simply isn't granted, and the drain runs with
//! fewer participants (or serially), bit-identically.

use crate::{erase_job, lock, CorePool, ErasedJob, ScopeState, IDLE, LEASED};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// One participant's role in a [`CoreLease::run_team`] protocol.
pub type TeamTask<'env, R> = Box<dyn FnOnce() -> R + Send + 'env>;

/// A reservation of pool workers (plus, for [`CorePool::lease_exact`],
/// temporary threads) held for the lease's lifetime. Dropping the lease
/// returns the workers to the pool's stealing rotation.
pub struct CoreLease<'p> {
    pool: &'p CorePool,
    /// Indices of reserved resident workers.
    members: Vec<usize>,
    /// Temporary threads attached per team run beyond the idle supply.
    extra: usize,
}

impl CorePool {
    /// Reserves up to `max` *currently idle* workers. The grant may be
    /// empty on a busy (or worker-less) pool; callers fall back to
    /// running serially — results are identical either way.
    pub fn lease(&self, max: usize) -> CoreLease<'_> {
        let shared = self.shared();
        let mut members = Vec::new();
        if max > 0 {
            for (i, slot) in shared.slots.iter().enumerate() {
                if slot
                    .mode
                    .compare_exchange(IDLE, LEASED, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    members.push(i);
                    if members.len() == max {
                        break;
                    }
                }
            }
        }
        shared.counters.add(&shared.counters.lease_requests, 1);
        shared
            .counters
            .add(&shared.counters.lease_workers_granted, members.len() as u64);
        if !members.is_empty() {
            shared.wake_all();
        }
        CoreLease {
            pool: self,
            members,
            extra: 0,
        }
    }

    /// Reserves exactly `n` team slots: idle workers first, the
    /// shortfall as temporary threads spawned per [`CoreLease::run_team`]
    /// call. For callers that *require* a participant count — the
    /// explicit `set_threads(Some(n))` override — so an n-worker drain
    /// protocol runs even on a host with fewer free cores.
    pub fn lease_exact(&self, n: usize) -> CoreLease<'_> {
        let mut lease = self.lease(n);
        lease.extra = n - lease.members.len();
        let shared = self.shared();
        shared.counters.add(
            &shared.counters.lease_workers_oversubscribed,
            lease.extra as u64,
        );
        lease
    }
}

impl CoreLease<'_> {
    /// Participants a [`CoreLease::run_team`] call will have: reserved
    /// workers plus temporary threads.
    pub fn team_size(&self) -> usize {
        self.members.len() + self.extra
    }

    /// Runs one team protocol: each task executes on its own dedicated
    /// participant while `coordinator` runs on the calling thread; the
    /// call returns when the coordinator *and* every task have finished.
    ///
    /// A task panic is re-raised here after the whole team has wound
    /// down (the coordinator's exit protocol is expected to notice and
    /// release the others, exactly as the lock-step drain does); a
    /// coordinator panic is re-raised after the tasks finish.
    ///
    /// # Panics
    ///
    /// Panics if `tasks.len() != self.team_size()` — team protocols are
    /// built for an exact participant count.
    pub fn run_team<'env, R, T>(
        &self,
        tasks: Vec<TeamTask<'env, R>>,
        coordinator: impl FnOnce() -> T,
    ) -> (T, Vec<R>)
    where
        R: Send + 'env,
    {
        assert_eq!(
            tasks.len(),
            self.team_size(),
            "one team task per leased participant"
        );
        let n = tasks.len();
        if n == 0 {
            return (coordinator(), Vec::new());
        }
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let scope = ScopeState::new(n);
        let mut jobs: Vec<ErasedJob> = Vec::with_capacity(n);
        for (i, task) in tasks.into_iter().enumerate() {
            let scope_task = std::sync::Arc::clone(&scope);
            let slot = &results[i];
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                match catch_unwind(AssertUnwindSafe(task)) {
                    Ok(r) => *lock(slot) = Some(r),
                    Err(payload) => scope_task.record_panic(payload),
                }
                scope_task.finish_one();
            });
            // SAFETY: `scope.wait()` below runs before `run_team`
            // returns on every path (including coordinator panics), so
            // the job never outlives `results` or the task's borrows.
            jobs.push(unsafe { erase_job(job) });
        }
        let shared = self.pool.shared();
        let mut jobs = jobs.into_iter();
        for &w in &self.members {
            let slot = &shared.slots[w];
            let mut direct = lock(&slot.direct);
            debug_assert!(direct.is_none(), "one team task in flight per worker");
            *direct = jobs.next();
            slot.direct_cv.notify_all();
        }
        let mut handles = Vec::with_capacity(self.extra);
        for job in jobs {
            handles.push(
                std::thread::Builder::new()
                    .name("higraph-pool-extra".to_string())
                    .spawn(job)
                    .expect("spawn oversubscription thread"),
            );
        }
        let out = catch_unwind(AssertUnwindSafe(coordinator));
        scope.wait();
        for handle in handles {
            let _ = handle.join(); // panics were captured by the wrapper
        }
        if let Some(payload) = scope.take_panic() {
            resume_unwind(payload);
        }
        match out {
            Ok(t) => (
                t,
                results
                    .into_iter()
                    .map(|slot| {
                        slot.into_inner()
                            .unwrap_or_else(|p| p.into_inner())
                            .expect("team task completed")
                    })
                    .collect(),
            ),
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for CoreLease<'_> {
    fn drop(&mut self) {
        let shared = self.pool.shared();
        for &w in &self.members {
            let released = shared.slots[w]
                .mode
                .compare_exchange(LEASED, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            debug_assert!(released, "a leased worker can only be released once");
            let _ = released;
            let _guard = lock(&shared.slots[w].direct);
            shared.slots[w].direct_cv.notify_all();
        }
        if !self.members.is_empty() {
            shared.wake_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Polls until every pool worker has parked as idle (worker startup
    /// and post-task transitions are asynchronous).
    fn settle(pool: &CorePool, want_idle: usize) {
        for _ in 0..2000 {
            let lease = pool.lease(want_idle);
            let got = lease.team_size();
            drop(lease);
            if got == want_idle {
                return;
            }
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("pool never settled to {want_idle} idle workers");
    }

    #[test]
    fn lease_grants_only_idle_workers() {
        let pool = CorePool::new(2);
        settle(&pool, 2);
        let a = pool.lease(8);
        assert_eq!(a.team_size(), 2, "grant capped by the idle supply");
        let b = pool.lease(8);
        assert_eq!(b.team_size(), 0, "no double-granting");
        drop(a);
        settle(&pool, 2);
    }

    #[test]
    fn lease_exact_oversubscribes_with_temporary_threads() {
        let pool = CorePool::new(1);
        settle(&pool, 1);
        let lease = pool.lease_exact(4);
        assert_eq!(lease.team_size(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<TeamTask<'_, usize>> = (0..4usize)
            .map(|i| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i * 2
                }) as TeamTask<'_, usize>
            })
            .collect();
        let (coord, results) = lease.run_team(tasks, || 99usize);
        assert_eq!(coord, 99);
        assert_eq!(results, vec![0, 2, 4, 6]);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn team_tasks_overlap_the_coordinator() {
        // A two-phase handshake through atomics: the team task can only
        // finish after the coordinator has run — so run_team must truly
        // execute them concurrently, not sequentially.
        let pool = CorePool::new(1);
        settle(&pool, 1);
        let lease = pool.lease_exact(1);
        let flag = AtomicUsize::new(0);
        let tasks: Vec<TeamTask<'_, ()>> = vec![Box::new(|| {
            while flag.load(Ordering::SeqCst) == 0 {
                std::thread::yield_now();
            }
        })];
        let ((), _) = lease.run_team(tasks, || flag.store(1, Ordering::SeqCst));
    }

    #[test]
    fn released_workers_return_to_batch_duty() {
        let pool = CorePool::new(2);
        settle(&pool, 2);
        {
            let lease = pool.lease(2);
            assert_eq!(lease.team_size(), 2);
        }
        settle(&pool, 2);
        assert_eq!(pool.run_ordered(8, |i| i + 1), (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn team_panic_propagates_after_wind_down() {
        let pool = CorePool::new(1);
        settle(&pool, 1);
        let lease = pool.lease_exact(2);
        let tasks: Vec<TeamTask<'_, ()>> = vec![Box::new(|| ()), Box::new(|| panic!("team boom"))];
        let outcome = catch_unwind(AssertUnwindSafe(|| lease.run_team(tasks, || ())));
        assert!(outcome.is_err());
        drop(lease);
        settle(&pool, 1);
    }
}
