//! Pool occupancy counters.
//!
//! The counters are monotonic process-lifetime totals, mirroring the
//! snapshot-delta idiom of `higraph_sim::selection`: a harness snapshots
//! before and after a region and reports the difference (the
//! `hostperf.pool.*` keys in `repro hostperf`). They are host-side
//! observability only — no simulated state ever reads them.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters owned by one [`crate::CorePool`].
#[derive(Debug, Default)]
pub(crate) struct PoolCounters {
    /// Queued pool tasks executed by workers (stolen or own-deque).
    pub(crate) tasks_executed: AtomicU64,
    /// Subset of `tasks_executed` taken from another worker's deque.
    pub(crate) tasks_stolen: AtomicU64,
    /// Queued tasks reclaimed and run inline by the submitting thread.
    pub(crate) tasks_inline: AtomicU64,
    /// Individual batch items completed under [`crate::CorePool::run_ordered`].
    pub(crate) items_executed: AtomicU64,
    /// Lease requests served (regardless of how many workers they got).
    pub(crate) lease_requests: AtomicU64,
    /// Resident workers handed to leases.
    pub(crate) lease_workers_granted: AtomicU64,
    /// Temporary threads attached by exact leases beyond the idle supply.
    pub(crate) lease_workers_oversubscribed: AtomicU64,
    /// Team tasks executed by leased workers.
    pub(crate) team_tasks: AtomicU64,
    /// Nanoseconds resident workers spent inside task bodies.
    pub(crate) busy_ns: AtomicU64,
}

impl PoolCounters {
    pub(crate) fn add(&self, counter: &AtomicU64, value: u64) {
        counter.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            tasks_inline: self.tasks_inline.load(Ordering::Relaxed),
            items_executed: self.items_executed.load(Ordering::Relaxed),
            lease_requests: self.lease_requests.load(Ordering::Relaxed),
            lease_workers_granted: self.lease_workers_granted.load(Ordering::Relaxed),
            lease_workers_oversubscribed: self.lease_workers_oversubscribed.load(Ordering::Relaxed),
            team_tasks: self.team_tasks.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a pool's counters; subtract two snapshots
/// (via [`PoolSnapshot::since`]) to attribute activity to a region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Queued pool tasks executed by workers.
    pub tasks_executed: u64,
    /// Tasks a worker stole from another worker's deque.
    pub tasks_stolen: u64,
    /// Queued tasks reclaimed and run inline by the submitting thread.
    pub tasks_inline: u64,
    /// Batch items completed under `run_ordered`.
    pub items_executed: u64,
    /// Lease requests served.
    pub lease_requests: u64,
    /// Resident workers handed to leases.
    pub lease_workers_granted: u64,
    /// Temporary threads attached by exact leases.
    pub lease_workers_oversubscribed: u64,
    /// Team tasks executed by leased workers.
    pub team_tasks: u64,
    /// Nanoseconds resident workers spent inside task bodies.
    pub busy_ns: u64,
}

impl PoolSnapshot {
    /// The activity between `earlier` and `self` (saturating, so a
    /// mismatched pair degrades to zeros instead of wrapping).
    pub fn since(&self, earlier: &PoolSnapshot) -> PoolSnapshot {
        PoolSnapshot {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            tasks_stolen: self.tasks_stolen.saturating_sub(earlier.tasks_stolen),
            tasks_inline: self.tasks_inline.saturating_sub(earlier.tasks_inline),
            items_executed: self.items_executed.saturating_sub(earlier.items_executed),
            lease_requests: self.lease_requests.saturating_sub(earlier.lease_requests),
            lease_workers_granted: self
                .lease_workers_granted
                .saturating_sub(earlier.lease_workers_granted),
            lease_workers_oversubscribed: self
                .lease_workers_oversubscribed
                .saturating_sub(earlier.lease_workers_oversubscribed),
            team_tasks: self.team_tasks.saturating_sub(earlier.team_tasks),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
        }
    }

    /// Worker occupancy over a wall-clock window: busy nanoseconds per
    /// worker-nanosecond available. Zero when the pool has no resident
    /// workers or the window is empty.
    pub fn occupancy(&self, window_ns: u64, workers: usize) -> f64 {
        let capacity = window_ns.saturating_mul(workers as u64);
        if capacity == 0 {
            0.0
        } else {
            self.busy_ns as f64 / capacity as f64
        }
    }
}
