//! Power model (Sec. 5.4), TSMC 12 nm at 0.8 V, 1 GHz.
//!
//! Calibrated, like [`crate::area`], to the paper's two synthesis points:
//!
//! * MDP-network, 32 channels, 160 entries/channel → **621.2 mW**;
//! * FIFO-plus-crossbar, 32 ports, 128 entries/channel → **508.1 mW**.

/// Power of one buffer entry, mW.
const POWER_PER_ENTRY: f64 = 0.095;
/// Power of one 2W1R FIFO controller, mW.
const POWER_PER_FIFO_CTRL: f64 = 0.8425;
/// Crossbar arbitration/mux power per port², mW.
const POWER_PER_PORT2: f64 = 0.116_191_406_25;

/// Power of an MDP-network with `channels` channels (radix 2) and
/// `entries_per_channel` buffer entries per channel, in mW.
///
/// # Panics
///
/// Panics if `channels` is not a power of two ≥ 2.
///
/// # Example
///
/// ```
/// use higraph_model::mdp_power_mw;
///
/// let p = mdp_power_mw(32, 160);
/// assert!((p - 621.2).abs() < 1.0);
/// ```
pub fn mdp_power_mw(channels: usize, entries_per_channel: usize) -> f64 {
    // lint:allow(panic-freedom): documented precondition of the analytic model; shapes come from validated configs
    assert!(
        channels >= 2 && channels.is_power_of_two(),
        "channels must be a power of two"
    );
    let stages = channels.trailing_zeros() as f64;
    let entries = (channels * entries_per_channel) as f64;
    entries * POWER_PER_ENTRY + channels as f64 * stages * POWER_PER_FIFO_CTRL
}

/// Power of a FIFO-plus-crossbar design with `ports` ports and
/// `entries_per_channel` input-FIFO entries per port, in mW.
///
/// # Panics
///
/// Panics if `ports < 2`.
///
/// # Example
///
/// ```
/// use higraph_model::crossbar_power_mw;
///
/// let p = crossbar_power_mw(32, 128);
/// assert!((p - 508.1).abs() < 1.0);
/// ```
pub fn crossbar_power_mw(ports: usize, entries_per_channel: usize) -> f64 {
    // lint:allow(panic-freedom): documented precondition of the analytic model; shapes come from validated configs
    assert!(ports >= 2, "a crossbar needs at least two ports");
    let entries = (ports * entries_per_channel) as f64;
    entries * POWER_PER_ENTRY + (ports * ports) as f64 * POWER_PER_PORT2
}

/// On-chip SRAM power per KiB, mW (supplementary constant for the DSE
/// objective, sized like [`crate::area`]'s SRAM figure: ~60 mW/MiB for
/// an actively banked cache at 1 GHz — an order-of-magnitude figure,
/// not a paper anchor; see `docs/model.md`).
const POWER_PER_SRAM_KB: f64 = 60.0 / 1024.0;

/// Power of one interaction fabric in mW, dispatched on the
/// frequency-model kind exactly like [`crate::area::fabric_area_mm2`].
///
/// # Panics
///
/// Panics like the underlying model when `channels` is invalid for it.
pub fn fabric_power_mw(
    kind: crate::frequency::NetworkKindModel,
    channels: usize,
    entries_per_channel: usize,
) -> f64 {
    use crate::frequency::NetworkKindModel;
    match kind {
        NetworkKindModel::Mdp => mdp_power_mw(channels, entries_per_channel),
        NetworkKindModel::Crossbar | NetworkKindModel::NaiveFifo => {
            crossbar_power_mw(channels, entries_per_channel)
        }
    }
}

/// Power of a `cache_kb`-KiB on-chip edge/offset cache, mW.
pub fn cache_power_mw(cache_kb: usize) -> f64 {
    cache_kb as f64 * POWER_PER_SRAM_KB
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequency::NetworkKindModel;

    #[test]
    fn calibrated_to_paper_points() {
        assert!((mdp_power_mw(32, 160) - 621.2).abs() < 0.1);
        assert!((crossbar_power_mw(32, 128) - 508.1).abs() < 0.1);
    }

    #[test]
    fn fabric_dispatch_matches_the_specific_models() {
        assert_eq!(
            fabric_power_mw(NetworkKindModel::Mdp, 32, 160),
            mdp_power_mw(32, 160)
        );
        assert_eq!(
            fabric_power_mw(NetworkKindModel::NaiveFifo, 64, 32),
            crossbar_power_mw(64, 32)
        );
    }

    #[test]
    fn cache_power_scales_linearly() {
        assert_eq!(cache_power_mw(0), 0.0);
        assert!((cache_power_mw(1024) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn mdp_power_overhead_is_modest() {
        let ratio = mdp_power_mw(32, 160) / crossbar_power_mw(32, 128);
        assert!(ratio > 1.0 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn power_scales_with_entries() {
        let p1 = mdp_power_mw(32, 80);
        let p2 = mdp_power_mw(32, 160);
        assert!(p2 > p1);
        // buffer term dominates: doubling entries adds ≥ 50%
        assert!(p2 / p1 > 1.5);
    }
}
