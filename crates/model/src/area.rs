//! Area model (Sec. 5.4), TSMC 12 nm.
//!
//! Both fabrics are buffer-dominated; the difference is the control logic:
//! MDP control is one small 2W1R FIFO controller per (stage, channel),
//! while crossbar arbitration grows quadratically with port count. The
//! constants are calibrated to reproduce the paper's two synthesis points
//! exactly:
//!
//! * MDP-network, 32 channels, 160 entries/channel → **0.375 mm²**;
//! * FIFO-plus-crossbar, 32 ports, 128 entries/channel → **0.292 mm²**.

/// Area of one buffer entry (a ~38-bit register-file slot), mm².
const AREA_PER_ENTRY: f64 = 5.5e-5;
/// Area of one 2W1R FIFO controller, mm².
const AREA_PER_FIFO_CTRL: f64 = 5.8375e-4;
/// Crossbar arbitration/mux area per port², mm².
const AREA_PER_PORT2: f64 = 6.515_625e-5;

/// Area of an MDP-network with `channels` channels (radix 2, so
/// `log2(channels)` stages) and `entries_per_channel` total buffer entries
/// per channel.
///
/// # Panics
///
/// Panics if `channels` is not a power of two ≥ 2.
///
/// # Example
///
/// ```
/// use higraph_model::mdp_area_mm2;
///
/// // the paper's synthesis point (Sec. 5.4)
/// let a = mdp_area_mm2(32, 160);
/// assert!((a - 0.375).abs() < 1e-3);
/// ```
pub fn mdp_area_mm2(channels: usize, entries_per_channel: usize) -> f64 {
    // lint:allow(panic-freedom): documented precondition of the analytic model; shapes come from validated configs
    assert!(
        channels >= 2 && channels.is_power_of_two(),
        "channels must be a power of two"
    );
    let stages = channels.trailing_zeros() as f64;
    let entries = (channels * entries_per_channel) as f64;
    entries * AREA_PER_ENTRY + channels as f64 * stages * AREA_PER_FIFO_CTRL
}

/// Area of a FIFO-plus-crossbar design with `ports` ports and
/// `entries_per_channel` input-FIFO entries per port.
///
/// # Panics
///
/// Panics if `ports < 2`.
///
/// # Example
///
/// ```
/// use higraph_model::crossbar_area_mm2;
///
/// let a = crossbar_area_mm2(32, 128);
/// assert!((a - 0.292).abs() < 1e-3);
/// ```
pub fn crossbar_area_mm2(ports: usize, entries_per_channel: usize) -> f64 {
    // lint:allow(panic-freedom): documented precondition of the analytic model; shapes come from validated configs
    assert!(ports >= 2, "a crossbar needs at least two ports");
    let entries = (ports * entries_per_channel) as f64;
    entries * AREA_PER_ENTRY + (ports * ports) as f64 * AREA_PER_PORT2
}

/// On-chip SRAM area per KiB, mm² (supplementary constant for the DSE
/// objective: the edge/offset cache is plain single-port SRAM, ~0.7
/// mm²/MiB in a 12 nm class process — an order-of-magnitude figure, not
/// a paper anchor; see `docs/model.md`).
const AREA_PER_SRAM_KB: f64 = 0.7 / 1024.0;

/// Area of one interaction fabric, dispatched on the frequency-model
/// kind: MDP-networks use [`mdp_area_mm2`]; crossbars — and the naive
/// nW1R FIFO, whose n-write-port mux is as centralized as a crossbar —
/// use [`crossbar_area_mm2`].
///
/// # Panics
///
/// Panics like the underlying model when `channels` is invalid for it.
pub fn fabric_area_mm2(
    kind: crate::frequency::NetworkKindModel,
    channels: usize,
    entries_per_channel: usize,
) -> f64 {
    use crate::frequency::NetworkKindModel;
    match kind {
        NetworkKindModel::Mdp => mdp_area_mm2(channels, entries_per_channel),
        NetworkKindModel::Crossbar | NetworkKindModel::NaiveFifo => {
            crossbar_area_mm2(channels, entries_per_channel)
        }
    }
}

/// Area of a `cache_kb`-KiB on-chip edge/offset cache, mm².
pub fn cache_area_mm2(cache_kb: usize) -> f64 {
    cache_kb as f64 * AREA_PER_SRAM_KB
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequency::NetworkKindModel;

    #[test]
    fn calibrated_to_paper_points() {
        assert!((mdp_area_mm2(32, 160) - 0.375).abs() < 1e-4);
        assert!((crossbar_area_mm2(32, 128) - 0.292).abs() < 1e-4);
    }

    #[test]
    fn fabric_dispatch_matches_the_specific_models() {
        assert_eq!(
            fabric_area_mm2(NetworkKindModel::Mdp, 32, 160),
            mdp_area_mm2(32, 160)
        );
        assert_eq!(
            fabric_area_mm2(NetworkKindModel::Crossbar, 32, 128),
            crossbar_area_mm2(32, 128)
        );
        // the naive FIFO's write mux is crossbar-class
        assert_eq!(
            fabric_area_mm2(NetworkKindModel::NaiveFifo, 32, 128),
            crossbar_area_mm2(32, 128)
        );
    }

    #[test]
    fn cache_area_scales_linearly() {
        assert_eq!(cache_area_mm2(0), 0.0);
        let a256 = cache_area_mm2(256);
        assert!((cache_area_mm2(1024) - 4.0 * a256).abs() < 1e-12);
        // a 1 MiB cache lands near the documented 0.7 mm²/MiB figure
        assert!((cache_area_mm2(1024) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn mdp_overhead_is_small_at_paper_config() {
        // "replacing crossbar with MDP-network brings little overhead":
        // ≤ 30% more area at the paper's buffer sizes.
        let ratio = mdp_area_mm2(32, 160) / crossbar_area_mm2(32, 128);
        assert!(ratio > 1.0 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn crossbar_area_grows_quadratically() {
        // with equal buffers, doubling ports should more than double the
        // logic term
        let logic64 = crossbar_area_mm2(64, 0);
        let logic32 = crossbar_area_mm2(32, 0);
        assert!(logic64 / logic32 > 3.5);
        // while MDP logic grows as n·log n
        let m64 = mdp_area_mm2(64, 0);
        let m32 = mdp_area_mm2(32, 0);
        assert!(m64 / m32 < 2.5);
    }

    #[test]
    fn area_monotone_in_buffer_size() {
        assert!(mdp_area_mm2(32, 320) > mdp_area_mm2(32, 160));
        assert!(crossbar_area_mm2(32, 256) > crossbar_area_mm2(32, 128));
    }
}
