//! Area model (Sec. 5.4), TSMC 12 nm.
//!
//! Both fabrics are buffer-dominated; the difference is the control logic:
//! MDP control is one small 2W1R FIFO controller per (stage, channel),
//! while crossbar arbitration grows quadratically with port count. The
//! constants are calibrated to reproduce the paper's two synthesis points
//! exactly:
//!
//! * MDP-network, 32 channels, 160 entries/channel → **0.375 mm²**;
//! * FIFO-plus-crossbar, 32 ports, 128 entries/channel → **0.292 mm²**.

/// Area of one buffer entry (a ~38-bit register-file slot), mm².
const AREA_PER_ENTRY: f64 = 5.5e-5;
/// Area of one 2W1R FIFO controller, mm².
const AREA_PER_FIFO_CTRL: f64 = 5.8375e-4;
/// Crossbar arbitration/mux area per port², mm².
const AREA_PER_PORT2: f64 = 6.515_625e-5;

/// Area of an MDP-network with `channels` channels (radix 2, so
/// `log2(channels)` stages) and `entries_per_channel` total buffer entries
/// per channel.
///
/// # Panics
///
/// Panics if `channels` is not a power of two ≥ 2.
///
/// # Example
///
/// ```
/// use higraph_model::mdp_area_mm2;
///
/// // the paper's synthesis point (Sec. 5.4)
/// let a = mdp_area_mm2(32, 160);
/// assert!((a - 0.375).abs() < 1e-3);
/// ```
pub fn mdp_area_mm2(channels: usize, entries_per_channel: usize) -> f64 {
    assert!(
        channels >= 2 && channels.is_power_of_two(),
        "channels must be a power of two"
    );
    let stages = channels.trailing_zeros() as f64;
    let entries = (channels * entries_per_channel) as f64;
    entries * AREA_PER_ENTRY + channels as f64 * stages * AREA_PER_FIFO_CTRL
}

/// Area of a FIFO-plus-crossbar design with `ports` ports and
/// `entries_per_channel` input-FIFO entries per port.
///
/// # Panics
///
/// Panics if `ports < 2`.
///
/// # Example
///
/// ```
/// use higraph_model::crossbar_area_mm2;
///
/// let a = crossbar_area_mm2(32, 128);
/// assert!((a - 0.292).abs() < 1e-3);
/// ```
pub fn crossbar_area_mm2(ports: usize, entries_per_channel: usize) -> f64 {
    assert!(ports >= 2, "a crossbar needs at least two ports");
    let entries = (ports * entries_per_channel) as f64;
    entries * AREA_PER_ENTRY + (ports * ports) as f64 * AREA_PER_PORT2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_to_paper_points() {
        assert!((mdp_area_mm2(32, 160) - 0.375).abs() < 1e-4);
        assert!((crossbar_area_mm2(32, 128) - 0.292).abs() < 1e-4);
    }

    #[test]
    fn mdp_overhead_is_small_at_paper_config() {
        // "replacing crossbar with MDP-network brings little overhead":
        // ≤ 30% more area at the paper's buffer sizes.
        let ratio = mdp_area_mm2(32, 160) / crossbar_area_mm2(32, 128);
        assert!(ratio > 1.0 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn crossbar_area_grows_quadratically() {
        // with equal buffers, doubling ports should more than double the
        // logic term
        let logic64 = crossbar_area_mm2(64, 0);
        let logic32 = crossbar_area_mm2(32, 0);
        assert!(logic64 / logic32 > 3.5);
        // while MDP logic grows as n·log n
        let m64 = mdp_area_mm2(64, 0);
        let m32 = mdp_area_mm2(32, 0);
        assert!(m64 / m32 < 2.5);
    }

    #[test]
    fn area_monotone_in_buffer_size() {
        assert!(mdp_area_mm2(32, 320) > mdp_area_mm2(32, 160));
        assert!(crossbar_area_mm2(32, 256) > crossbar_area_mm2(32, 128));
    }
}
