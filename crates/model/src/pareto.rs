//! Multi-objective design comparison: objective tuples, Pareto dominance,
//! and a non-dominated front.
//!
//! The design-space exploration driver (`repro dse` in `higraph-bench`)
//! scores every candidate accelerator as a **minimize-all** tuple
//! ([`Objectives`]): modeled execution time at the design's effective
//! clock, dataflow-fabric silicon area, and run energy. A design is worth
//! keeping only if no other evaluated design is at least as good on every
//! objective and strictly better on one ([`Objectives::dominated_by`]);
//! [`ParetoFront`] maintains exactly that set incrementally.
//!
//! Everything here is deterministic and order-stable: inserting the same
//! points in the same order always yields the same front (ties — equal
//! tuples — keep the first-seen point), which is what lets the DSE report
//! be gated in CI. See `docs/dse.md` for the methodology and
//! `docs/model.md` for how the objective values are assembled from the
//! calibrated area/power/frequency models.

/// One design point's minimize-all objective tuple.
///
/// `cycles` rides along for reporting but is *not* part of the dominance
/// comparison — two designs at different clocks are only comparable in
/// time, which is `cycles / effective_frequency` (see
/// `docs/model.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Simulated cycles (reporting only; time is what dominance uses).
    pub cycles: u64,
    /// Modeled execution time in nanoseconds at the effective clock.
    pub time_ns: f64,
    /// Modeled silicon area in mm² (fabrics + on-chip cache, × chips).
    pub area_mm2: f64,
    /// Modeled run energy in millijoules (power × time).
    pub energy_mj: f64,
}

impl Objectives {
    /// The three compared objectives, in (time, area, energy) order.
    pub fn as_array(&self) -> [f64; 3] {
        [self.time_ns, self.area_mm2, self.energy_mj]
    }

    /// Whether every objective is finite (a design with an infinite or
    /// NaN objective can never join a front).
    pub fn is_finite(&self) -> bool {
        self.as_array().iter().all(|v| v.is_finite())
    }

    /// Strict Pareto dominance: `other` is at least as good on every
    /// objective and strictly better on at least one.
    pub fn dominated_by(&self, other: &Objectives) -> bool {
        let (mine, theirs) = (self.as_array(), other.as_array());
        let all_le = theirs.iter().zip(&mine).all(|(t, m)| t <= m);
        let any_lt = theirs.iter().zip(&mine).any(|(t, m)| t < m);
        all_le && any_lt
    }

    /// Weak dominance: `other` is at least as good everywhere (an equal
    /// tuple weakly dominates). The front uses this for insertion so
    /// duplicate tuples cannot accumulate.
    pub fn weakly_dominated_by(&self, other: &Objectives) -> bool {
        let (mine, theirs) = (self.as_array(), other.as_array());
        theirs.iter().zip(&mine).all(|(t, m)| t <= m)
    }
}

/// A non-dominated set of `(label, objectives)` design points.
///
/// Inserting a point removes every existing point it strictly dominates;
/// a point weakly dominated by an existing member is rejected. Iteration
/// order is insertion order of the surviving members — deterministic for
/// a deterministic insertion sequence.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront<T> {
    points: Vec<(T, Objectives)>,
}

impl<T> ParetoFront<T> {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront { points: Vec::new() }
    }

    /// Offers a point to the front. Returns `true` if it joined (and
    /// evicted whatever it strictly dominates), `false` if an existing
    /// member weakly dominates it or an objective is non-finite.
    pub fn try_insert(&mut self, item: T, objectives: Objectives) -> bool {
        if !objectives.is_finite() {
            return false;
        }
        if self
            .points
            .iter()
            .any(|(_, q)| objectives.weakly_dominated_by(q))
        {
            return false;
        }
        self.points.retain(|(_, q)| !q.dominated_by(&objectives));
        self.points.push((item, objectives));
        true
    }

    /// The surviving members, in insertion order.
    pub fn points(&self) -> &[(T, Objectives)] {
        &self.points
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// How far `candidate` sits from the front, as a multiplicative
    /// factor ≥ 1.
    ///
    /// `1.0` means on the front (or extending it): no member strictly
    /// dominates the candidate. Otherwise the excess is the smallest,
    /// over all dominating members `q`, of the worst per-objective ratio
    /// `candidate_i / q_i` — i.e. "some front member beats this design by
    /// at least `excess`× on its weakest objective". The DSE gate uses
    /// this to assert the paper's synthesis configurations stay within
    /// tolerance of whatever the search discovers.
    pub fn front_excess(&self, candidate: &Objectives) -> f64 {
        let c = candidate.as_array();
        let excess = self
            .points
            .iter()
            .filter(|(_, q)| candidate.dominated_by(q))
            .map(|(_, q)| {
                q.as_array()
                    .iter()
                    .zip(&c)
                    .map(|(q_i, c_i)| {
                        if *q_i <= 0.0 {
                            // a zero-valued objective cannot be "beaten
                            // by a ratio"; no excess on this axis
                            1.0
                        } else {
                            c_i / q_i
                        }
                    })
                    .fold(1.0, f64::max)
            })
            .fold(f64::INFINITY, f64::min);
        if excess.is_finite() {
            excess.max(1.0)
        } else {
            1.0 // nothing dominates the candidate: on (or extending) the front
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(time_ns: f64, area_mm2: f64, energy_mj: f64) -> Objectives {
        Objectives {
            cycles: time_ns as u64,
            time_ns,
            area_mm2,
            energy_mj,
        }
    }

    #[test]
    fn dominance_is_strict_and_directional() {
        let a = obj(100.0, 1.0, 10.0);
        let better = obj(90.0, 1.0, 10.0);
        let mixed = obj(90.0, 2.0, 10.0);
        assert!(a.dominated_by(&better));
        assert!(!better.dominated_by(&a));
        assert!(!a.dominated_by(&mixed), "trade-offs do not dominate");
        assert!(!mixed.dominated_by(&a));
        assert!(!a.dominated_by(&a), "equal tuples do not strictly dominate");
        assert!(a.weakly_dominated_by(&a));
    }

    #[test]
    fn front_keeps_only_non_dominated_points() {
        let mut front = ParetoFront::new();
        assert!(front.try_insert("slow-small", obj(200.0, 1.0, 10.0)));
        assert!(front.try_insert("fast-big", obj(100.0, 2.0, 10.0)));
        // dominated by "slow-small": rejected
        assert!(!front.try_insert("worse", obj(250.0, 1.5, 11.0)));
        assert_eq!(front.len(), 2);
        // dominates "slow-small" only: evicts it, keeps "fast-big"
        assert!(front.try_insert("both", obj(150.0, 0.5, 9.0)));
        assert_eq!(front.len(), 2);
        let labels: Vec<_> = front.points().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["fast-big", "both"]);
    }

    #[test]
    fn duplicate_tuples_keep_the_first_seen_point() {
        let mut front = ParetoFront::new();
        assert!(front.try_insert("first", obj(100.0, 1.0, 10.0)));
        assert!(!front.try_insert("twin", obj(100.0, 1.0, 10.0)));
        assert_eq!(front.len(), 1);
        assert_eq!(front.points()[0].0, "first");
    }

    #[test]
    fn non_finite_objectives_never_join() {
        let mut front = ParetoFront::new();
        assert!(!front.try_insert("inf", obj(f64::INFINITY, 1.0, 1.0)));
        assert!(!front.try_insert("nan", obj(f64::NAN, 1.0, 1.0)));
        assert!(front.is_empty());
    }

    #[test]
    fn front_excess_is_one_on_the_front_and_ratio_off_it() {
        let mut front = ParetoFront::new();
        front.try_insert("a", obj(100.0, 1.0, 10.0));
        front.try_insert("b", obj(50.0, 4.0, 10.0));
        // a member
        assert_eq!(front.front_excess(&obj(100.0, 1.0, 10.0)), 1.0);
        // extends the front (new trade-off)
        assert_eq!(front.front_excess(&obj(60.0, 2.0, 10.0)), 1.0);
        // dominated by "a": 10% worse on its weakest axis
        let excess = front.front_excess(&obj(110.0, 1.0, 10.0));
        assert!((excess - 1.1).abs() < 1e-12, "{excess}");
        // dominated by "a" on two axes: worst ratio wins
        let excess = front.front_excess(&obj(110.0, 1.3, 10.0));
        assert!((excess - 1.3).abs() < 1e-12, "{excess}");
    }

    #[test]
    fn front_excess_picks_the_nearest_dominating_member() {
        let mut front = ParetoFront::new();
        front.try_insert("far", obj(10.0, 1.0, 1.0));
        front.try_insert("near", obj(100.0, 0.5, 10.0));
        assert_eq!(front.len(), 2, "trade-off points coexist");
        // dominated by both; "near" yields the smaller excess (2.0 on
        // area vs "far"'s 12x on time)
        let excess = front.front_excess(&obj(120.0, 1.0, 12.0));
        assert!((excess - 2.0).abs() < 1e-12, "{excess}");
    }

    #[test]
    fn insertion_order_is_deterministic() {
        let points = [
            ("p0", obj(200.0, 1.0, 10.0)),
            ("p1", obj(100.0, 2.0, 10.0)),
            ("p2", obj(150.0, 1.5, 10.0)),
            ("p3", obj(100.0, 2.0, 10.0)),
        ];
        let build = || {
            let mut f = ParetoFront::new();
            for (l, o) in points {
                f.try_insert(l, o);
            }
            f.points().iter().map(|(l, _)| *l).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
