//! On-chip memory layout (Fig. 7 and Table 1).
//!
//! HiGraph buffers all data arrays on chip in 16 MB of memory (GraphDynS
//! uses 32 MB). Fig. 7 shows the floorplan budget; vertex IDs and
//! properties are quantized to 19 bits to make the capacity stretch
//! (Sec. 5.1). Graphs that exceed the budget are processed with graph
//! slicing (`higraph_graph::slicing`).

/// Bits per vertex ID / property value on chip (Sec. 5.1).
pub const QUANT_BITS: u64 = 19;

/// The Fig. 7 memory budget, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Edge Array budget (destination IDs + weights): 9.5 MB in Fig. 7.
    pub edge_bytes: u64,
    /// Edge Info Array budget: 2 MB.
    pub edge_info_bytes: u64,
    /// Offset Array budget: 1.4 MB.
    pub offset_bytes: u64,
    /// Property Array budget: 1.2 MB.
    pub property_bytes: u64,
    /// ActiveVertex + tProperty Array budget: 2.4 MB.
    pub active_tprop_bytes: u64,
}

const MB: u64 = 1024 * 1024;

impl MemoryLayout {
    /// HiGraph's 16 MB layout (Fig. 7).
    pub fn higraph() -> Self {
        MemoryLayout {
            edge_bytes: 9 * MB + MB / 2,
            edge_info_bytes: 2 * MB,
            offset_bytes: MB + 2 * MB / 5,
            property_bytes: MB + MB / 5,
            active_tprop_bytes: 2 * MB + 2 * MB / 5,
        }
    }

    /// GraphDynS's 32 MB configuration (Table 1): every Fig. 7 region
    /// doubled.
    pub fn graphdyns() -> Self {
        let h = MemoryLayout::higraph();
        MemoryLayout {
            edge_bytes: h.edge_bytes * 2,
            edge_info_bytes: h.edge_info_bytes * 2,
            offset_bytes: h.offset_bytes * 2,
            property_bytes: h.property_bytes * 2,
            active_tprop_bytes: h.active_tprop_bytes * 2,
        }
    }

    /// Total on-chip memory, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.edge_bytes
            + self.edge_info_bytes
            + self.offset_bytes
            + self.property_bytes
            + self.active_tprop_bytes
    }

    /// Edge capacity: the Edge Array stores one 19-bit destination ID per
    /// edge (weights live in the separate Edge Info region). Note Fig. 7's
    /// 9.5 MB is *exactly* `4_194_304 × 19` bits — the layout was sized for
    /// R16, the largest Table 2 dataset.
    pub fn max_edges(&self) -> u64 {
        self.edge_bytes * 8 / QUANT_BITS
    }

    /// Vertex capacity, limited by the tightest of the offset (22-bit edge
    /// pointers, enough for [`MemoryLayout::max_edges`]), property (19
    /// bits) and active/tProperty regions — and by the 19-bit ID space
    /// itself.
    pub fn max_vertices(&self) -> u64 {
        let by_offset = self.offset_bytes * 8 / 22;
        let by_property = self.property_bytes * 8 / QUANT_BITS;
        let by_tprop = self.active_tprop_bytes * 8 / (2 * QUANT_BITS);
        by_offset
            .min(by_property)
            .min(by_tprop)
            .min(1 << QUANT_BITS)
    }

    /// Whether a graph with the given counts fits entirely on chip.
    pub fn fits(&self, num_vertices: u32, num_edges: u64) -> bool {
        u64::from(num_vertices) <= self.max_vertices() && num_edges <= self.max_edges()
    }

    /// Number of destination-interval slices needed to process a graph
    /// (1 = fits without slicing; Sec. 5.3 discussion).
    pub fn slices_required(&self, num_vertices: u32, num_edges: u64) -> u64 {
        let v = u64::from(num_vertices).div_ceil(self.max_vertices().max(1));
        let e = num_edges.div_ceil(self.max_edges().max(1));
        v.max(e).max(1)
    }
}

impl Default for MemoryLayout {
    fn default() -> Self {
        MemoryLayout::higraph()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higraph_budget_totals_16mb() {
        // Fig. 7 regions sum to ~16.5 MB (the figure's labels are rounded);
        // integer division of the fractional regions may shave a byte or two.
        let total = MemoryLayout::higraph().total_bytes() as i64;
        assert!((total - (16 * MB + MB / 2) as i64).abs() <= 4, "{total}");
    }

    #[test]
    fn edge_region_sized_exactly_for_r16() {
        assert_eq!(MemoryLayout::higraph().max_edges(), 4_194_304);
    }

    #[test]
    fn graphdyns_has_double_budget() {
        assert_eq!(
            MemoryLayout::graphdyns().total_bytes(),
            MemoryLayout::higraph().total_bytes() * 2
        );
    }

    #[test]
    fn all_table2_datasets_fit_on_chip() {
        // The paper evaluates all six datasets without slicing.
        let layout = MemoryLayout::higraph();
        let table2: [(u32, u64); 6] = [
            (7_115, 103_689),
            (75_879, 508_837),
            (82_168, 948_464),
            (81_306, 1_768_149),
            (16_384, 1_048_576),
            (65_536, 4_194_304),
        ];
        for (v, e) in table2 {
            assert!(layout.fits(v, e), "({v}, {e}) should fit");
            assert_eq!(layout.slices_required(v, e), 1);
        }
    }

    #[test]
    fn huge_graph_requires_slicing() {
        let layout = MemoryLayout::higraph();
        assert!(!layout.fits(400_000, 80_000_000));
        assert!(layout.slices_required(400_000, 80_000_000) > 1);
    }

    #[test]
    fn capacity_is_19_bit_bound() {
        // 19-bit IDs cap addressable vertices at 524288; the property
        // region must not pretend to hold more than that
        let layout = MemoryLayout::higraph();
        assert!(layout.max_vertices() <= (1 << QUANT_BITS));
    }
}
