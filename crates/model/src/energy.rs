//! Energy estimates derived from the Sec. 5.4 power model.
//!
//! The paper reports fabric power at the 1 GHz operating point; energy for
//! a run is simply `power × modeled execution time`. The quantity of
//! interest for accelerator comparisons is **energy per traversed edge**
//! (nJ/edge), where a design that is both faster *and* barely more
//! power-hungry (the MDP-network's trade) wins clearly.

use crate::power::{crossbar_power_mw, mdp_power_mw};

/// Energy of a run in nanojoules: mW·ns are picojoules, so
/// `power_mw × time_ns / 1e3`.
///
/// # Example
///
/// ```
/// use higraph_model::energy::energy_nj;
///
/// // 500 mW for 2 µs = 1 µJ = 1000 nJ
/// let e = energy_nj(500.0, 2_000.0);
/// assert!((e - 1000.0).abs() < 1e-9);
/// ```
pub fn energy_nj(power_mw: f64, time_ns: f64) -> f64 {
    power_mw * time_ns / 1e3
}

/// Dataflow-fabric energy per traversed edge, in nJ/edge, for an
/// MDP-network of `channels` channels with `entries_per_channel` buffers,
/// given a run's modeled time and edge count.
pub fn mdp_energy_per_edge_nj(
    channels: usize,
    entries_per_channel: usize,
    time_ns: f64,
    edges: u64,
) -> f64 {
    if edges == 0 {
        return 0.0;
    }
    energy_nj(mdp_power_mw(channels, entries_per_channel), time_ns) / edges as f64
}

/// Dataflow-fabric energy per traversed edge for a FIFO-plus-crossbar
/// design (see [`mdp_energy_per_edge_nj`]).
pub fn crossbar_energy_per_edge_nj(
    ports: usize,
    entries_per_channel: usize,
    time_ns: f64,
    edges: u64,
) -> f64 {
    if edges == 0 {
        return 0.0;
    }
    energy_nj(crossbar_power_mw(ports, entries_per_channel), time_ns) / edges as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_edges_is_zero_energy_per_edge() {
        assert_eq!(mdp_energy_per_edge_nj(32, 160, 1000.0, 0), 0.0);
    }

    #[test]
    fn faster_run_wins_despite_higher_power() {
        // the paper's trade: MDP burns 22% more power but (say) finishes
        // 1.5× sooner → lower energy per edge
        let edges = 1_000_000;
        let mdp = mdp_energy_per_edge_nj(32, 160, 1_000_000.0, edges);
        let xbar = crossbar_energy_per_edge_nj(32, 128, 1_500_000.0, edges);
        assert!(mdp < xbar, "mdp {mdp} vs crossbar {xbar}");
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let a = mdp_energy_per_edge_nj(32, 160, 1_000.0, 100);
        let b = mdp_energy_per_edge_nj(32, 160, 2_000.0, 100);
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
