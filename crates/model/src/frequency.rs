//! Frequency models (Fig. 4 and Sec. 5.3).
//!
//! A crossbar's critical path grows with both the arbitration tree depth
//! (`log2 ports`) and the wire/mux fan-in (`ports`); we use
//!
//! `t(p) = T0 + A·log2(p) + B·p` (ns)
//!
//! with constants calibrated so the curve matches Fig. 4: ≈2.3 GHz at 4
//! ports, ≈1.2 GHz at 32, dipping below the 1 GHz target between 32 and 64
//! ports (which is why GraphDynS "does not support more than 64 channels",
//! Sec. 5.3), down to ≈0.4 GHz at 256.
//!
//! The MDP-network's stage logic touches only `radix` channels, so its
//! critical path grows only with the (logarithmic) stage mux depth: the
//! paper reports 0.93 ns at 32 channels rising merely to 0.97 ns at 256.

/// Crossbar critical-path constants (ns), fit to Fig. 4.
const XBAR_T0: f64 = 0.25;
const XBAR_LOG: f64 = 0.08;
const XBAR_LIN: f64 = 0.006;

/// MDP critical path: 0.93 ns at 32 channels, +0.0133 ns per doubling
/// (reaching the paper's 0.97 ns at 256 channels).
const MDP_T32: f64 = 0.93;
const MDP_PER_OCTAVE: f64 = 0.04 / 3.0;

/// Clock target of HiGraph and the baselines (Table 1): 1 GHz.
pub const TARGET_GHZ: f64 = 1.0;

/// Critical path of a `ports`-port crossbar, in ns.
///
/// # Panics
///
/// Panics if `ports < 2`.
pub fn crossbar_critical_path_ns(ports: usize) -> f64 {
    // lint:allow(panic-freedom): documented precondition of the analytic model; shapes come from validated configs
    assert!(ports >= 2, "a crossbar needs at least two ports");
    XBAR_T0 + XBAR_LOG * (ports as f64).log2() + XBAR_LIN * ports as f64
}

/// Achievable frequency of a `ports`-port crossbar, in GHz (Fig. 4).
///
/// # Example
///
/// ```
/// use higraph_model::crossbar_frequency_ghz;
///
/// let f4 = crossbar_frequency_ghz(4);
/// let f256 = crossbar_frequency_ghz(256);
/// assert!(f4 > 2.0 && f4 < 2.5);
/// assert!(f256 < 0.5); // sharp decline, as in Fig. 4
/// ```
pub fn crossbar_frequency_ghz(ports: usize) -> f64 {
    1.0 / crossbar_critical_path_ns(ports)
}

/// Critical path of an MDP-network with `channels` channels, in ns
/// (Sec. 5.3: 0.93 ns at 32 → 0.97 ns at 256).
///
/// # Panics
///
/// Panics if `channels < 2`.
pub fn mdp_critical_path_ns(channels: usize) -> f64 {
    // lint:allow(panic-freedom): documented precondition of the analytic model; shapes come from validated configs
    assert!(channels >= 2, "need at least two channels");
    MDP_T32 + MDP_PER_OCTAVE * ((channels as f64).log2() - 5.0)
}

/// Achievable frequency of an MDP-network, in GHz.
pub fn mdp_frequency_ghz(channels: usize) -> f64 {
    1.0 / mdp_critical_path_ns(channels)
}

/// Frequency penalty of the MDP-network *radix* (Sec. 5.4 design option).
///
/// A radix-`r` stage is an `r`-port interaction point — its write mux and
/// full-signal tree scale like a small crossbar — so a "too large radix
/// still encounters design centralization". Small radices clear the 1 GHz
/// target comfortably; radix ≥ 64 falls below it.
///
/// # Panics
///
/// Panics if `radix < 2`.
pub fn mdp_radix_frequency_ghz(radix: usize) -> f64 {
    crossbar_frequency_ghz(radix)
}

/// Which propagation fabric a design uses at its widest interaction point
/// (this is what bounds the clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKindModel {
    /// Crossbar / centralized arbitration (GraphDynS, Graphicionado).
    Crossbar,
    /// MDP-network (HiGraph).
    Mdp,
    /// Naive nW1R FIFO (Fig. 5 b/c): the FIFO write mux is as centralized
    /// as a crossbar, so it shares the crossbar's scaling.
    NaiveFifo,
}

/// The clock a design actually achieves: the 1 GHz target, capped by the
/// fabric's critical path at `channels` interacting channels.
///
/// # Example
///
/// ```
/// use higraph_model::{effective_frequency_ghz, NetworkKindModel};
///
/// // HiGraph holds 1 GHz out to 256 channels (Sec. 5.3)…
/// assert_eq!(effective_frequency_ghz(NetworkKindModel::Mdp, 256), 1.0);
/// // …while a 128-port crossbar cannot reach 1 GHz.
/// assert!(effective_frequency_ghz(NetworkKindModel::Crossbar, 128) < 1.0);
/// ```
pub fn effective_frequency_ghz(kind: NetworkKindModel, channels: usize) -> f64 {
    let fabric = match kind {
        NetworkKindModel::Crossbar | NetworkKindModel::NaiveFifo => {
            crossbar_frequency_ghz(channels)
        }
        NetworkKindModel::Mdp => mdp_frequency_ghz(channels),
    };
    fabric.min(TARGET_GHZ)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_curve_matches_fig4_shape() {
        // Fig. 4 anchor points (GHz), read off the plot.
        let expect = [
            (4, 2.3),
            (8, 1.9),
            (16, 1.5),
            (32, 1.2),
            (64, 0.9),
            (128, 0.6),
            (256, 0.4),
        ];
        for (ports, ghz) in expect {
            let f = crossbar_frequency_ghz(ports);
            assert!(
                (f - ghz).abs() / ghz < 0.15,
                "{ports} ports: model {f:.2} GHz vs figure {ghz} GHz"
            );
        }
    }

    #[test]
    fn crossbar_frequency_is_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for ports in [2, 4, 8, 16, 32, 64, 128, 256, 512] {
            let f = crossbar_frequency_ghz(ports);
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn mdp_matches_papers_synthesis_points() {
        assert!((mdp_critical_path_ns(32) - 0.93).abs() < 1e-9);
        assert!((mdp_critical_path_ns(256) - 0.97).abs() < 1e-9);
        // both meet the 1 ns clock target
        assert!(mdp_critical_path_ns(256) < 1.0);
    }

    #[test]
    fn graphdyns_unsupported_above_64_channels() {
        // Sec. 5.3: GraphDynS cannot scale past 64 channels at 1 GHz.
        assert!(effective_frequency_ghz(NetworkKindModel::Crossbar, 64) < 1.0);
        assert!(effective_frequency_ghz(NetworkKindModel::Crossbar, 32) > 0.95);
        for ch in [32, 64, 128, 256] {
            assert_eq!(effective_frequency_ghz(NetworkKindModel::Mdp, ch), 1.0);
        }
    }

    #[test]
    fn naive_fifo_scales_like_crossbar() {
        assert_eq!(
            effective_frequency_ghz(NetworkKindModel::NaiveFifo, 128),
            effective_frequency_ghz(NetworkKindModel::Crossbar, 128)
        );
    }

    #[test]
    #[should_panic(expected = "at least two ports")]
    fn one_port_crossbar_panics() {
        let _ = crossbar_critical_path_ns(1);
    }
}
