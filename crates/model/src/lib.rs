//! Analytical timing, area and power models.
//!
//! The paper's RTL is synthesized with Synopsys DC on TSMC 12 nm; this
//! crate substitutes analytical models *calibrated to the paper's reported
//! synthesis points* (see `DESIGN.md` for the substitution argument):
//!
//! * [`frequency`] — crossbar frequency vs port count (Fig. 4), the MDP
//!   critical path (0.93 ns at 32 channels → 0.97 ns at 256, Sec. 5.3),
//!   and the effective clock each design achieves;
//! * [`area`] / [`power`] — buffer-dominated area/power estimates matching
//!   Sec. 5.4 (MDP-network 0.375 mm² / 621.2 mW at 160 entries per channel;
//!   FIFO-plus-crossbar 0.292 mm² / 508.1 mW at 128);
//! * [`layout`] — the Fig. 7 on-chip memory budget and a fit-check for
//!   datasets under the 19-bit quantization;
//! * [`energy`] — run-energy and energy-per-edge estimates derived from
//!   the power model;
//! * [`pareto`] — objective tuples, Pareto dominance, and the
//!   non-dominated front maintained by the `repro dse` design-space
//!   exploration (see `docs/dse.md`).

#![forbid(unsafe_code)]

pub mod area;
pub mod energy;
pub mod frequency;
pub mod layout;
pub mod pareto;
pub mod power;

pub use area::{cache_area_mm2, crossbar_area_mm2, fabric_area_mm2, mdp_area_mm2};
pub use energy::energy_nj;
pub use frequency::{
    crossbar_critical_path_ns, crossbar_frequency_ghz, effective_frequency_ghz,
    mdp_critical_path_ns, mdp_frequency_ghz, mdp_radix_frequency_ghz, NetworkKindModel,
};
pub use layout::MemoryLayout;
pub use pareto::{Objectives, ParetoFront};
pub use power::{cache_power_mw, crossbar_power_mw, fabric_power_mw, mdp_power_mw};
