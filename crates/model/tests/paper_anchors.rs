//! Pins the calibrated cost model to the paper's reported synthesis
//! numbers (Sec. 5.3 and 5.4, TSMC 12 nm).
//!
//! The `repro dse` design-space exploration optimizes *over* these
//! functions — cycles × area × energy objectives are only meaningful if
//! the models keep reproducing the cited anchor points. Tolerances here
//! are deliberately tight (well under the CI perf gate's 10%): drifting
//! a calibration constant should fail loudly, as a model change, not be
//! absorbed as measurement noise. See `docs/model.md` for the anchor
//! table and the analytical-substitution argument.

use higraph_model::{
    cache_area_mm2, cache_power_mw, crossbar_area_mm2, crossbar_critical_path_ns,
    crossbar_frequency_ghz, crossbar_power_mw, effective_frequency_ghz, energy_nj, fabric_area_mm2,
    fabric_power_mw, mdp_area_mm2, mdp_critical_path_ns, mdp_power_mw, NetworkKindModel,
};

/// Sec. 5.4: MDP-network at the paper's synthesis point — 32 channels,
/// 160 buffer entries per channel — is 0.375 mm² and 621.2 mW.
#[test]
fn mdp_160_synthesis_point() {
    let area = mdp_area_mm2(32, 160);
    let power = mdp_power_mw(32, 160);
    assert!((area - 0.375).abs() < 1e-4, "area {area} mm²");
    assert!((power - 621.2).abs() < 0.1, "power {power} mW");
}

/// Sec. 5.4: FIFO-plus-crossbar at 32 ports, 128 entries per channel —
/// 0.292 mm² and 508.1 mW.
#[test]
fn fifo_crossbar_128_synthesis_point() {
    let area = crossbar_area_mm2(32, 128);
    let power = crossbar_power_mw(32, 128);
    assert!((area - 0.292).abs() < 1e-4, "area {area} mm²");
    assert!((power - 508.1).abs() < 0.1, "power {power} mW");
}

/// Sec. 5.3: the MDP-network's critical path is 0.93 ns at 32 channels
/// and rises only to 0.97 ns at 256 — both inside the 1 ns clock target.
#[test]
fn mdp_critical_path_anchors() {
    assert!((mdp_critical_path_ns(32) - 0.93).abs() < 1e-9);
    assert!((mdp_critical_path_ns(256) - 0.97).abs() < 1e-9);
    for channels in [32, 64, 128, 256] {
        assert_eq!(
            effective_frequency_ghz(NetworkKindModel::Mdp, channels),
            1.0,
            "{channels} channels must hold the 1 GHz target"
        );
    }
}

/// Fig. 4 / Sec. 5.3: the crossbar curve crosses below the 1 GHz target
/// between 32 and 64 ports — the reason GraphDynS cannot scale past 64
/// channels.
#[test]
fn crossbar_frequency_wall() {
    assert!(crossbar_frequency_ghz(32) > 1.0);
    assert!(crossbar_frequency_ghz(64) < 1.0);
    assert!(effective_frequency_ghz(NetworkKindModel::Crossbar, 128) < 1.0);
    // the Fig. 4 end points, within plot-reading tolerance
    assert!((crossbar_frequency_ghz(4) - 2.3).abs() / 2.3 < 0.15);
    assert!((crossbar_frequency_ghz(256) - 0.4).abs() / 0.4 < 0.15);
    // the curve is a critical-path reciprocal, so the path itself grows
    assert!(crossbar_critical_path_ns(256) > crossbar_critical_path_ns(32));
}

/// Sec. 5.4's headline trade, derived end-to-end through the models: the
/// MDP-network pays ≈ 28% area and ≈ 22% power over FIFO+crossbar at the
/// synthesis points — "little overhead" for the decentralized fabric.
#[test]
fn mdp_overhead_ratios_match_paper() {
    let area_ratio = mdp_area_mm2(32, 160) / crossbar_area_mm2(32, 128);
    let power_ratio = mdp_power_mw(32, 160) / crossbar_power_mw(32, 128);
    assert!((area_ratio - 0.375 / 0.292).abs() < 1e-3, "{area_ratio}");
    assert!((power_ratio - 621.2 / 508.1).abs() < 1e-3, "{power_ratio}");
}

/// The DSE objective assembly path: fabric dispatch must reproduce the
/// same anchors, and energy must be exactly power × time.
#[test]
fn dse_objective_assembly_reproduces_anchors() {
    assert_eq!(
        fabric_area_mm2(NetworkKindModel::Mdp, 32, 160),
        mdp_area_mm2(32, 160)
    );
    assert_eq!(
        fabric_power_mw(NetworkKindModel::Crossbar, 32, 128),
        crossbar_power_mw(32, 128)
    );
    // 621.2 mW for 1 µs = 621.2 nJ
    let e = energy_nj(mdp_power_mw(32, 160), 1_000.0);
    assert!((e - 621.2).abs() < 0.1, "{e} nJ");
    // supplementary SRAM terms stay small next to the fabric at the
    // paper's cache sizes (256 KiB ≈ 0.175 mm², 15 mW)
    assert!(cache_area_mm2(256) < 0.2);
    assert!(cache_power_mw(256) < 20.0);
}
