//! Breadth-First Search as a vertex program.

use crate::program::{VertexProgram, INF};
use higraph_graph::{Csr, VertexId, Weight};

/// BFS from a single source: the property of a vertex is its hop distance
/// (level) from the source; unreachable vertices keep [`INF`].
///
/// `Process_Edge` ignores the weight (`level + 1`), `Reduce` is `min`, and
/// `Apply` is `min` — all order-independent.
///
/// # Example
///
/// ```
/// use higraph_graph::builder::EdgeList;
/// use higraph_vcpm::{execute, programs::Bfs};
///
/// # fn main() -> Result<(), higraph_graph::GraphError> {
/// let mut list = EdgeList::new(3);
/// list.push(0, 1, 9)?;
/// list.push(1, 2, 9)?;
/// let run = execute(&Bfs::from_source(0), &list.into_csr());
/// assert_eq!(run.properties, vec![0, 1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bfs {
    source: VertexId,
}

impl Bfs {
    /// BFS rooted at `source`.
    pub fn from_source(source: u32) -> Self {
        Bfs {
            source: VertexId(source),
        }
    }

    /// The root vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }
}

impl VertexProgram for Bfs {
    type Prop = u64;

    fn name(&self) -> &'static str {
        "BFS"
    }

    fn init_prop(&self, v: VertexId, _graph: &Csr) -> u64 {
        if v == self.source {
            0
        } else {
            INF
        }
    }

    fn initial_frontier(&self, graph: &Csr) -> Vec<VertexId> {
        if self.source.0 < graph.num_vertices() {
            vec![self.source]
        } else {
            Vec::new()
        }
    }

    fn identity(&self) -> u64 {
        INF
    }

    fn process_edge(&self, u_prop: u64, _weight: Weight) -> u64 {
        u_prop.saturating_add(1).min(INF)
    }

    fn reduce(&self, t_prop: u64, imm: u64) -> u64 {
        t_prop.min(imm)
    }

    fn apply(&self, _v: VertexId, prop: u64, t_prop: u64, _graph: &Csr) -> u64 {
        prop.min(t_prop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::execute;
    use higraph_graph::builder::EdgeList;

    #[test]
    fn levels_on_a_cycle() {
        let mut list = EdgeList::new(4);
        for i in 0..4 {
            list.push(i, (i + 1) % 4, 1).unwrap();
        }
        let run = execute(&Bfs::from_source(0), &list.into_csr());
        assert_eq!(run.properties, vec![0, 1, 2, 3]);
    }

    #[test]
    fn out_of_range_source_gives_empty_frontier() {
        let g = EdgeList::new(2).into_csr();
        let run = execute(&Bfs::from_source(9), &g);
        assert_eq!(run.iterations, 0);
        assert_eq!(run.properties, vec![INF, INF]);
    }

    #[test]
    fn weight_is_ignored() {
        let bfs = Bfs::from_source(0);
        assert_eq!(bfs.process_edge(3, 1), bfs.process_edge(3, 1000));
    }

    #[test]
    fn shortest_of_two_paths_wins() {
        // 0 -> 1 -> 2 and 0 -> 2 directly
        let mut list = EdgeList::new(3);
        list.push(0, 1, 1).unwrap();
        list.push(1, 2, 1).unwrap();
        list.push(0, 2, 1).unwrap();
        let run = execute(&Bfs::from_source(0), &list.into_csr());
        assert_eq!(run.properties[2], 1);
    }
}
