//! Multi-source BFS (landmark reachability) as a vertex program.
//!
//! Up to 64 landmark sources traverse the graph *simultaneously*: each
//! vertex's property is a bitmask of the landmarks that can reach it.
//! `Reduce` is bitwise OR — idempotent, commutative, associative — which
//! makes this the densest-traffic workload in the suite (every frontier
//! is the union of 64 BFS frontiers), a good stress test for the dataflow
//! propagation fabric.

use crate::program::VertexProgram;
use higraph_graph::{Csr, VertexId, Weight};

/// Multi-source reachability: `prop & (1 << i) != 0` iff landmark `i`
/// reaches the vertex.
///
/// # Example
///
/// ```
/// use higraph_graph::builder::EdgeList;
/// use higraph_vcpm::{execute, programs::MultiSourceBfs};
///
/// # fn main() -> Result<(), higraph_graph::GraphError> {
/// let mut list = EdgeList::new(3);
/// list.push(0, 2, 1)?;
/// list.push(1, 2, 1)?;
/// let prog = MultiSourceBfs::new(vec![0, 1]).expect("two landmarks");
/// let run = execute(&prog, &list.into_csr());
/// assert_eq!(run.properties[2], 0b11); // reached by both landmarks
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiSourceBfs {
    sources: Vec<u32>,
}

impl MultiSourceBfs {
    /// Creates the program for the given landmark vertices (at most 64).
    ///
    /// # Errors
    ///
    /// Returns the source list back if it is empty or longer than 64.
    pub fn new(sources: Vec<u32>) -> Result<Self, Vec<u32>> {
        if sources.is_empty() || sources.len() > 64 {
            Err(sources)
        } else {
            Ok(MultiSourceBfs { sources })
        }
    }

    /// The landmark vertices, in bit order.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Number of landmarks that reach a vertex with property `prop`.
    pub fn reach_count(prop: u64) -> u32 {
        prop.count_ones()
    }
}

impl VertexProgram for MultiSourceBfs {
    type Prop = u64;

    fn name(&self) -> &'static str {
        "MS-BFS"
    }

    fn init_prop(&self, v: VertexId, _graph: &Csr) -> u64 {
        let mut mask = 0u64;
        for (i, &s) in self.sources.iter().enumerate() {
            if s == v.0 {
                mask |= 1 << i;
            }
        }
        mask
    }

    fn initial_frontier(&self, graph: &Csr) -> Vec<VertexId> {
        let mut frontier: Vec<VertexId> = self
            .sources
            .iter()
            .filter(|&&s| s < graph.num_vertices())
            .map(|&s| VertexId(s))
            .collect();
        frontier.sort_unstable();
        frontier.dedup();
        frontier
    }

    fn identity(&self) -> u64 {
        0
    }

    fn process_edge(&self, u_prop: u64, _weight: Weight) -> u64 {
        u_prop
    }

    fn reduce(&self, t_prop: u64, imm: u64) -> u64 {
        t_prop | imm
    }

    fn apply(&self, _v: VertexId, prop: u64, t_prop: u64, _graph: &Csr) -> u64 {
        prop | t_prop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::Bfs;
    use crate::reference::execute;
    use crate::INF;
    use higraph_graph::gen::power_law;

    #[test]
    fn rejects_empty_or_oversized_source_sets() {
        assert!(MultiSourceBfs::new(vec![]).is_err());
        assert!(MultiSourceBfs::new((0..65).collect()).is_err());
        assert!(MultiSourceBfs::new((0..64).collect()).is_ok());
    }

    #[test]
    fn matches_independent_bfs_runs() {
        let g = power_law(300, 2400, 2.0, 7, 6);
        let sources = vec![3u32, 50, 200];
        let prog = MultiSourceBfs::new(sources.clone()).expect("three landmarks");
        let run = execute(&prog, &g);
        for (i, &s) in sources.iter().enumerate() {
            let single = execute(&Bfs::from_source(s), &g);
            for v in g.vertices() {
                let reached_single = single.properties[v.index()] != INF;
                let reached_multi = run.properties[v.index()] & (1 << i) != 0;
                assert_eq!(reached_single, reached_multi, "landmark {s}, vertex {v}");
            }
        }
    }

    #[test]
    fn reach_count_counts_bits() {
        assert_eq!(MultiSourceBfs::reach_count(0), 0);
        assert_eq!(MultiSourceBfs::reach_count(0b1011), 3);
    }

    #[test]
    fn duplicate_sources_collapse_in_frontier() {
        let g = power_law(50, 400, 2.0, 3, 1);
        let prog = MultiSourceBfs::new(vec![5, 5, 9]).expect("valid");
        let frontier = prog.initial_frontier(&g);
        assert_eq!(frontier.len(), 2);
    }
}
