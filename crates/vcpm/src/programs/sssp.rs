//! Single-Source Shortest Path as a vertex program (Bellman-Ford style).

use crate::program::{VertexProgram, INF};
use higraph_graph::{Csr, VertexId, Weight};

/// SSSP from a single source: the property is the length of the shortest
/// known path; unreachable vertices keep [`INF`].
///
/// `Process_Edge` is `dist + weight` (saturating), `Reduce` and `Apply`
/// are `min`.
///
/// # Example
///
/// ```
/// use higraph_graph::builder::EdgeList;
/// use higraph_vcpm::{execute, programs::Sssp};
///
/// # fn main() -> Result<(), higraph_graph::GraphError> {
/// let mut list = EdgeList::new(3);
/// list.push(0, 1, 10)?;
/// list.push(0, 2, 1)?;
/// list.push(2, 1, 2)?;
/// let run = execute(&Sssp::from_source(0), &list.into_csr());
/// assert_eq!(run.properties[1], 3); // via vertex 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sssp {
    source: VertexId,
}

impl Sssp {
    /// SSSP rooted at `source`.
    pub fn from_source(source: u32) -> Self {
        Sssp {
            source: VertexId(source),
        }
    }

    /// The root vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }
}

impl VertexProgram for Sssp {
    type Prop = u64;

    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn init_prop(&self, v: VertexId, _graph: &Csr) -> u64 {
        if v == self.source {
            0
        } else {
            INF
        }
    }

    fn initial_frontier(&self, graph: &Csr) -> Vec<VertexId> {
        if self.source.0 < graph.num_vertices() {
            vec![self.source]
        } else {
            Vec::new()
        }
    }

    fn identity(&self) -> u64 {
        INF
    }

    fn process_edge(&self, u_prop: u64, weight: Weight) -> u64 {
        u_prop.saturating_add(u64::from(weight)).min(INF)
    }

    fn reduce(&self, t_prop: u64, imm: u64) -> u64 {
        t_prop.min(imm)
    }

    fn apply(&self, _v: VertexId, prop: u64, t_prop: u64, _graph: &Csr) -> u64 {
        prop.min(t_prop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::execute;
    use higraph_graph::builder::EdgeList;
    use higraph_graph::gen::erdos_renyi;

    /// Dijkstra oracle for cross-checking.
    fn dijkstra(graph: &higraph_graph::Csr, source: u32) -> Vec<u64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![INF; graph.num_vertices() as usize];
        let mut heap = BinaryHeap::new();
        dist[source as usize] = 0;
        heap.push(Reverse((0u64, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for e in graph.neighbors(VertexId(u)) {
                let nd = d + u64::from(e.weight);
                if nd < dist[e.dst.index()] {
                    dist[e.dst.index()] = nd;
                    heap.push(Reverse((nd, e.dst.0)));
                }
            }
        }
        dist
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let g = erdos_renyi(80, 480, 31, seed);
            let run = execute(&Sssp::from_source(0), &g);
            assert_eq!(run.properties, dijkstra(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn negative_free_relaxation_terminates() {
        let mut list = EdgeList::new(2);
        list.push(0, 1, 1).unwrap();
        list.push(1, 0, 1).unwrap();
        let run = execute(&Sssp::from_source(0), &list.into_csr());
        assert_eq!(run.properties, vec![0, 1]);
    }

    #[test]
    fn saturating_add_never_wraps() {
        let sssp = Sssp::from_source(0);
        assert_eq!(sssp.process_edge(INF, u32::MAX), INF);
    }
}
