//! The four graph algorithms evaluated in the paper (Sec. 5.1) — BFS,
//! SSSP, SSWP and PageRank — plus two extension workloads (WCC and
//! multi-source BFS), each expressed as a [`crate::VertexProgram`].

mod bfs;
mod msbfs;
mod pagerank;
mod sssp;
mod sswp;
mod wcc;

pub use bfs::Bfs;
pub use msbfs::MultiSourceBfs;
pub use pagerank::{PageRank, RANK_SCALE};
pub use sssp::Sssp;
pub use sswp::Sswp;
pub use wcc::Wcc;
