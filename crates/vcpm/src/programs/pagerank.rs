//! PageRank as a vertex program, in deterministic fixed-point arithmetic.
//!
//! Floating-point addition is not associative, so a parallel accelerator
//! folding contributions in network-arrival order would not bit-match a
//! sequential reference. We therefore run PageRank in Q24.40 fixed point
//! with wrapping addition — fully associative and commutative — so the
//! accelerator models can be validated by exact comparison.
//!
//! As usual for scatter-style PageRank, the stored property is the
//! *outgoing share* `rank / out_degree`, so `Process_Edge` is the identity
//! and the apply phase re-divides by degree.

use crate::program::VertexProgram;
use higraph_graph::{Csr, VertexId, Weight};

/// Fixed-point scale: ranks are stored as `rank * RANK_SCALE` (Q24.40).
pub const RANK_SCALE: u64 = 1 << 40;

/// Damping factor 0.85 in Q16 fixed point.
const DAMPING_Q16: u128 = (0.85 * 65536.0) as u128;

/// PageRank with damping 0.85.
///
/// The property of vertex `v` is `rank(v) / max(out_degree(v), 1)` in Q24.40
/// fixed point; use [`PageRank::rank_of`] to recover the rank itself.
///
/// # Example
///
/// ```
/// use higraph_graph::gen::erdos_renyi;
/// use higraph_vcpm::{execute, programs::PageRank};
///
/// let g = erdos_renyi(32, 256, 1, 3);
/// let pr = PageRank::new(10);
/// let run = execute(&pr, &g);
/// let total: f64 = g.vertices().map(|v| pr.rank_of(run.properties[v.index()], &g, v)).sum();
/// assert!((total - 1.0).abs() < 0.02); // ranks stay (almost) a distribution
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRank {
    max_iterations: u32,
}

impl PageRank {
    /// PageRank capped at `max_iterations` scatter/apply rounds.
    pub fn new(max_iterations: u32) -> Self {
        PageRank { max_iterations }
    }

    /// Recovers the (approximate) real-valued rank of `v` from its stored
    /// share property.
    pub fn rank_of(&self, prop: u64, graph: &Csr, v: VertexId) -> f64 {
        let deg = graph.out_degree(v).max(1);
        (prop as f64) * (deg as f64) / (RANK_SCALE as f64)
    }
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank::new(20)
    }
}

impl VertexProgram for PageRank {
    type Prop = u64;

    fn name(&self) -> &'static str {
        "PR"
    }

    fn init_prop(&self, v: VertexId, graph: &Csr) -> u64 {
        let n = u64::from(graph.num_vertices()).max(1);
        let deg = graph.out_degree(v).max(1);
        RANK_SCALE / n / deg
    }

    fn initial_frontier(&self, graph: &Csr) -> Vec<VertexId> {
        graph.vertices().collect()
    }

    fn identity(&self) -> u64 {
        0
    }

    fn process_edge(&self, u_prop: u64, _weight: Weight) -> u64 {
        u_prop
    }

    fn reduce(&self, t_prop: u64, imm: u64) -> u64 {
        t_prop.wrapping_add(imm)
    }

    fn apply(&self, v: VertexId, _prop: u64, t_prop: u64, graph: &Csr) -> u64 {
        let n = u64::from(graph.num_vertices()).max(1);
        // base = (1 - damping) / n in Q24.40, derived from the Q16 damping
        // complement so both terms use the same quantized damping factor.
        let base = ((u128::from(RANK_SCALE) * (65536 - DAMPING_Q16)) >> 16) as u64 / n;
        let damped = ((u128::from(t_prop) * DAMPING_Q16) >> 16) as u64;
        let new_rank = base.wrapping_add(damped);
        let deg = graph.out_degree(v).max(1);
        new_rank / deg
    }

    fn max_iterations(&self) -> Option<u32> {
        Some(self.max_iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::execute;
    use higraph_graph::builder::EdgeList;
    use higraph_graph::gen::power_law;

    #[test]
    fn ranks_sum_to_one_on_cycle() {
        let mut list = EdgeList::new(4);
        for i in 0..4 {
            list.push(i, (i + 1) % 4, 1).unwrap();
        }
        let g = list.into_csr();
        let pr = PageRank::new(30);
        let run = execute(&pr, &g);
        let total: f64 = g
            .vertices()
            .map(|v| pr.rank_of(run.properties[v.index()], &g, v))
            .sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
        // symmetry: all four ranks equal
        assert!(run.properties.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn hub_gets_higher_rank() {
        // star: everyone points at 0, 0 points at 1
        let mut list = EdgeList::new(5);
        for i in 1..5 {
            list.push(i, 0, 1).unwrap();
        }
        list.push(0, 1, 1).unwrap();
        let g = list.into_csr();
        let pr = PageRank::new(25);
        let run = execute(&pr, &g);
        let rank0 = pr.rank_of(run.properties[0], &g, VertexId(0));
        let rank2 = pr.rank_of(run.properties[2], &g, VertexId(2));
        assert!(rank0 > 3.0 * rank2, "hub {rank0} leaf {rank2}");
    }

    #[test]
    fn reduce_is_commutative_and_associative() {
        let pr = PageRank::default();
        let (a, b, c) = (123456789u64, 987654321u64, u64::MAX - 5);
        assert_eq!(pr.reduce(a, b), pr.reduce(b, a));
        assert_eq!(pr.reduce(pr.reduce(a, b), c), pr.reduce(a, pr.reduce(b, c)));
    }

    #[test]
    fn rank_leakage_is_small_on_skewed_graph() {
        let g = power_law(200, 2000, 2.0, 3, 1);
        let pr = PageRank::new(15);
        let run = execute(&pr, &g);
        let total: f64 = g
            .vertices()
            .map(|v| pr.rank_of(run.properties[v.index()], &g, v))
            .sum();
        // Dangling vertices absorb (leak) rank mass since this formulation
        // does not redistribute it; the total must stay a sub-distribution.
        assert!(total > 0.1 && total < 1.01, "total {total}");
    }
}
