//! Weakly Connected Components as a vertex program.
//!
//! Not part of the paper's four evaluated algorithms, but a standard
//! member of the Graphicionado/GraphDynS workload family and a useful
//! stress test: *every* vertex is active in iteration 0 (like PageRank)
//! yet the frontier then decays unevenly (like BFS), exercising both
//! front-end regimes of the accelerator.

use crate::program::VertexProgram;
use higraph_graph::{Csr, VertexId, Weight};

/// Label-propagation connected components: each vertex's property is the
/// smallest vertex ID it can be reached from along directed edges
/// (treating the graph as undirected requires symmetrized input, as with
/// all scatter-style WCC implementations).
///
/// `Process_Edge` forwards the label, `Reduce` and `Apply` take the
/// minimum — order-independent, so the accelerator bit-matches the
/// reference.
///
/// # Example
///
/// ```
/// use higraph_graph::builder::EdgeList;
/// use higraph_vcpm::{execute, programs::Wcc};
///
/// # fn main() -> Result<(), higraph_graph::GraphError> {
/// let mut list = EdgeList::new(4);
/// list.push_undirected(0, 1, 1)?;
/// list.push_undirected(2, 3, 1)?;
/// let run = execute(&Wcc::new(), &list.into_csr());
/// assert_eq!(run.properties, vec![0, 0, 2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Wcc;

impl Wcc {
    /// Creates the components program.
    pub fn new() -> Self {
        Wcc
    }

    /// Number of distinct components in a finished run's properties.
    pub fn count_components(properties: &[u64]) -> usize {
        let mut labels: Vec<u64> = properties.to_vec();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

impl VertexProgram for Wcc {
    type Prop = u64;

    fn name(&self) -> &'static str {
        "WCC"
    }

    fn init_prop(&self, v: VertexId, _graph: &Csr) -> u64 {
        u64::from(v.0)
    }

    fn initial_frontier(&self, graph: &Csr) -> Vec<VertexId> {
        graph.vertices().collect()
    }

    fn identity(&self) -> u64 {
        u64::MAX
    }

    fn process_edge(&self, u_prop: u64, _weight: Weight) -> u64 {
        u_prop
    }

    fn reduce(&self, t_prop: u64, imm: u64) -> u64 {
        t_prop.min(imm)
    }

    fn apply(&self, _v: VertexId, prop: u64, t_prop: u64, _graph: &Csr) -> u64 {
        prop.min(t_prop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::execute;
    use higraph_graph::builder::EdgeList;
    use higraph_graph::gen::erdos_renyi;

    #[test]
    fn labels_two_components() {
        let mut list = EdgeList::new(6);
        list.push_undirected(0, 1, 1).unwrap();
        list.push_undirected(1, 2, 1).unwrap();
        list.push_undirected(3, 4, 1).unwrap();
        // vertex 5 isolated
        let run = execute(&Wcc::new(), &list.into_csr());
        assert_eq!(run.properties, vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(Wcc::count_components(&run.properties), 3);
    }

    #[test]
    fn matches_union_find_oracle() {
        let g = {
            // symmetrize a random graph
            let base = erdos_renyi(120, 400, 1, 8);
            let mut list = EdgeList::new(120);
            for (u, e) in base.edges() {
                list.push_undirected(u.0, e.dst.0, 1).unwrap();
            }
            list.into_csr()
        };
        let run = execute(&Wcc::new(), &g);

        // union-find oracle
        let mut parent: Vec<u32> = (0..120).collect();
        fn find(p: &mut Vec<u32>, x: u32) -> u32 {
            if p[x as usize] != x {
                let r = find(p, p[x as usize]);
                p[x as usize] = r;
            }
            p[x as usize]
        }
        for (u, e) in g.edges() {
            let (a, b) = (find(&mut parent, u.0), find(&mut parent, e.dst.0));
            if a != b {
                parent[a.max(b) as usize] = a.min(b);
            }
        }
        for v in 0..120u32 {
            let root = find(&mut parent, v);
            assert_eq!(run.properties[v as usize], u64::from(root), "vertex {v}");
        }
    }

    #[test]
    fn single_vertex_graph() {
        let g = EdgeList::new(1).into_csr();
        let run = execute(&Wcc::new(), &g);
        assert_eq!(run.properties, vec![0]);
        assert_eq!(Wcc::count_components(&run.properties), 1);
    }
}
