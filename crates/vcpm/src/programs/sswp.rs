//! Single-Source Widest Path as a vertex program.

use crate::program::{VertexProgram, INF};
use higraph_graph::{Csr, VertexId, Weight};

/// SSWP from a single source: the property of a vertex is the maximum
/// bottleneck width over all paths from the source (the widest path).
/// The source itself has width [`INF`]; unreachable vertices have width 0.
///
/// `Process_Edge` is `min(width, weight)` (the bottleneck of extending the
/// path by one edge), `Reduce` and `Apply` are `max`.
///
/// # Example
///
/// ```
/// use higraph_graph::builder::EdgeList;
/// use higraph_vcpm::{execute, programs::Sswp};
///
/// # fn main() -> Result<(), higraph_graph::GraphError> {
/// let mut list = EdgeList::new(3);
/// list.push(0, 1, 3)?;
/// list.push(1, 2, 8)?;
/// list.push(0, 2, 2)?;
/// let run = execute(&Sswp::from_source(0), &list.into_csr());
/// assert_eq!(run.properties[2], 3); // via vertex 1: min(3, 8) beats 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sswp {
    source: VertexId,
}

impl Sswp {
    /// SSWP rooted at `source`.
    pub fn from_source(source: u32) -> Self {
        Sswp {
            source: VertexId(source),
        }
    }

    /// The root vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }
}

impl VertexProgram for Sswp {
    type Prop = u64;

    fn name(&self) -> &'static str {
        "SSWP"
    }

    fn init_prop(&self, v: VertexId, _graph: &Csr) -> u64 {
        if v == self.source {
            INF
        } else {
            0
        }
    }

    fn initial_frontier(&self, graph: &Csr) -> Vec<VertexId> {
        if self.source.0 < graph.num_vertices() {
            vec![self.source]
        } else {
            Vec::new()
        }
    }

    fn identity(&self) -> u64 {
        0
    }

    fn process_edge(&self, u_prop: u64, weight: Weight) -> u64 {
        u_prop.min(u64::from(weight))
    }

    fn reduce(&self, t_prop: u64, imm: u64) -> u64 {
        t_prop.max(imm)
    }

    fn apply(&self, _v: VertexId, prop: u64, t_prop: u64, _graph: &Csr) -> u64 {
        prop.max(t_prop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::execute;
    use higraph_graph::builder::EdgeList;

    #[test]
    fn bottleneck_of_chain_is_min_weight() {
        let mut list = EdgeList::new(4);
        list.push(0, 1, 9).unwrap();
        list.push(1, 2, 2).unwrap();
        list.push(2, 3, 7).unwrap();
        let run = execute(&Sswp::from_source(0), &list.into_csr());
        assert_eq!(run.properties, vec![INF, 9, 2, 2]);
    }

    #[test]
    fn widest_of_parallel_paths_wins() {
        // two paths 0->1: direct (width 4) and via 2 (widths 6, 5 -> 5)
        let mut list = EdgeList::new(3);
        list.push(0, 1, 4).unwrap();
        list.push(0, 2, 6).unwrap();
        list.push(2, 1, 5).unwrap();
        let run = execute(&Sswp::from_source(0), &list.into_csr());
        assert_eq!(run.properties[1], 5);
    }

    #[test]
    fn unreachable_width_is_zero() {
        let mut list = EdgeList::new(3);
        list.push(0, 1, 4).unwrap();
        let run = execute(&Sswp::from_source(0), &list.into_csr());
        assert_eq!(run.properties[2], 0);
    }
}
