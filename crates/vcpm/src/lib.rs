//! Vertex-Centric Programming Model (VCPM) for the HiGraph reproduction.
//!
//! The paper's Algorithm "Pseudocode of VCPM" (Fig. 2) structures iterative
//! graph algorithms as:
//!
//! * **Scatter phase** — for each active vertex `u`, read its edge list and
//!   for each edge `(u, v)` compute `Imm = Process_Edge(u.prop, e.weight)`
//!   and fold `v.tProp = Reduce(v.tProp, Imm)`;
//! * **Apply phase** — for every vertex, `applyRes = Apply(v.prop, v.tProp)`;
//!   vertices whose property changed are activated for the next iteration.
//!
//! This crate provides the [`VertexProgram`] abstraction over the three
//! user-defined functions, a software *reference executor*
//! ([`reference::execute`]) that serves as the golden model for the
//! cycle-level accelerator in `higraph-accel`, and the four algorithms the
//! paper evaluates: [`programs::Bfs`], [`programs::Sssp`],
//! [`programs::Sswp`] and [`programs::PageRank`].
//!
//! All four programs use order-independent `Reduce` functions (min / max /
//! wrapping fixed-point add), so the reference executor and the massively
//! parallel accelerator produce bit-identical results regardless of edge
//! processing order — this is what the integration tests assert.
//!
//! # Example
//!
//! ```
//! use higraph_graph::gen::erdos_renyi;
//! use higraph_vcpm::{programs::Bfs, reference};
//!
//! let g = erdos_renyi(64, 512, 1, 7);
//! let run = reference::execute(&Bfs::from_source(0), &g);
//! assert_eq!(run.properties[0], 0); // source at level 0
//! ```

#![forbid(unsafe_code)]

pub mod program;
pub mod programs;
pub mod reference;

pub use program::{VertexProgram, INF};
pub use reference::{execute, VcpmRun};
