//! Software reference executor — the golden model.
//!
//! Executes the paper's VCPM pseudocode (Fig. 2 / Algorithm "Pseudocode of
//! VCPM") literally and sequentially. The cycle-level accelerator models in
//! `higraph-accel` must produce bit-identical Property Arrays; integration
//! tests enforce this.

use crate::program::VertexProgram;
use higraph_graph::{Csr, VertexId};

/// Result of executing a [`VertexProgram`] to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct VcpmRun<P> {
    /// Final Property Array, indexed by vertex ID.
    pub properties: Vec<P>,
    /// Number of scatter/apply iterations executed.
    pub iterations: u32,
    /// Total edge traversals across all scatter phases (the paper's
    /// throughput metric counts these).
    pub edges_processed: u64,
    /// Active-vertex count at the start of each iteration.
    pub frontier_sizes: Vec<usize>,
}

impl<P> VcpmRun<P> {
    /// Mean frontier size across iterations (a workload-shape statistic).
    pub fn mean_frontier(&self) -> f64 {
        if self.frontier_sizes.is_empty() {
            0.0
        } else {
            self.frontier_sizes.iter().sum::<usize>() as f64 / self.frontier_sizes.len() as f64
        }
    }
}

/// Executes `program` on `graph` until the frontier empties or the
/// program's iteration cap is reached.
///
/// # Example
///
/// ```
/// use higraph_graph::builder::EdgeList;
/// use higraph_vcpm::{programs::Sssp, reference::execute};
///
/// # fn main() -> Result<(), higraph_graph::GraphError> {
/// let mut list = EdgeList::new(3);
/// list.push(0, 1, 5)?;
/// list.push(1, 2, 7)?;
/// let run = execute(&Sssp::from_source(0), &list.into_csr());
/// assert_eq!(run.properties, vec![0, 5, 12]);
/// # Ok(())
/// # }
/// ```
pub fn execute<Prog: VertexProgram>(program: &Prog, graph: &Csr) -> VcpmRun<Prog::Prop> {
    let n = graph.num_vertices() as usize;
    let mut properties: Vec<Prog::Prop> = graph
        .vertices()
        .map(|v| program.init_prop(v, graph))
        .collect();
    let mut active = program.initial_frontier(graph);
    let mut iterations = 0;
    let mut edges_processed = 0u64;
    let mut frontier_sizes = Vec::new();

    while !active.is_empty() {
        if let Some(cap) = program.max_iterations() {
            if iterations >= cap {
                break;
            }
        }
        frontier_sizes.push(active.len());

        // Scatter phase.
        let mut t_props: Vec<Prog::Prop> = vec![program.identity(); n];
        for &u in &active {
            let u_prop = properties[u.index()];
            for e in graph.neighbors(u) {
                let imm = program.process_edge(u_prop, e.weight);
                let t = &mut t_props[e.dst.index()];
                *t = program.reduce(*t, imm);
                edges_processed += 1;
            }
        }

        // Apply phase.
        active.clear();
        for v in graph.vertices() {
            let apply_res = program.apply(v, properties[v.index()], t_props[v.index()], graph);
            if properties[v.index()] != apply_res {
                properties[v.index()] = apply_res;
                active.push(v);
            }
        }
        iterations += 1;
    }

    VcpmRun {
        properties,
        iterations,
        edges_processed,
        frontier_sizes,
    }
}

/// Per-iteration trace of a VCPM execution: the frontier fed to each
/// scatter phase. The accelerator models replay the same frontiers, so a
/// trace is also a compact workload description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierTrace {
    /// `frontiers[i]` is the active list at the start of iteration `i`.
    pub frontiers: Vec<Vec<VertexId>>,
}

/// Executes `program` and records every per-iteration frontier.
pub fn trace_frontiers<Prog: VertexProgram>(program: &Prog, graph: &Csr) -> FrontierTrace {
    let n = graph.num_vertices() as usize;
    let mut properties: Vec<Prog::Prop> = graph
        .vertices()
        .map(|v| program.init_prop(v, graph))
        .collect();
    let mut active = program.initial_frontier(graph);
    let mut frontiers = Vec::new();
    let mut iterations = 0;

    while !active.is_empty() {
        if let Some(cap) = program.max_iterations() {
            if iterations >= cap {
                break;
            }
        }
        frontiers.push(active.clone());
        let mut t_props: Vec<Prog::Prop> = vec![program.identity(); n];
        for &u in &active {
            let u_prop = properties[u.index()];
            for e in graph.neighbors(u) {
                let imm = program.process_edge(u_prop, e.weight);
                let t = &mut t_props[e.dst.index()];
                *t = program.reduce(*t, imm);
            }
        }
        active.clear();
        for v in graph.vertices() {
            let apply_res = program.apply(v, properties[v.index()], t_props[v.index()], graph);
            if properties[v.index()] != apply_res {
                properties[v.index()] = apply_res;
                active.push(v);
            }
        }
        iterations += 1;
    }
    FrontierTrace { frontiers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{Bfs, PageRank, Sssp};
    use higraph_graph::builder::EdgeList;

    fn path(n: u32) -> Csr {
        let mut list = EdgeList::new(n);
        for i in 0..n - 1 {
            list.push(i, i + 1, 2).unwrap();
        }
        list.into_csr()
    }

    #[test]
    fn bfs_levels_on_path() {
        let run = execute(&Bfs::from_source(0), &path(5));
        assert_eq!(run.properties, vec![0, 1, 2, 3, 4]);
        // iterations: one per wavefront step, plus the final iteration in
        // which the sink vertex (out-degree 0) scatters nothing.
        assert_eq!(run.iterations, 5);
        assert_eq!(run.edges_processed, 4);
    }

    #[test]
    fn frontier_trace_matches_execution() {
        let g = path(4);
        let t = trace_frontiers(&Bfs::from_source(0), &g);
        assert_eq!(t.frontiers[0], vec![VertexId(0)]);
        assert_eq!(t.frontiers[1], vec![VertexId(1)]);
        assert_eq!(t.frontiers.len(), 4);
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let mut list = EdgeList::new(3);
        list.push(0, 1, 1).unwrap();
        let run = execute(&Sssp::from_source(0), &list.into_csr());
        assert_eq!(run.properties[2], crate::INF);
    }

    #[test]
    fn pagerank_respects_iteration_cap() {
        let g = path(6);
        let pr = PageRank::new(5);
        let run = execute(&pr, &g);
        assert!(run.iterations <= 5);
    }

    #[test]
    fn mean_frontier() {
        let run = execute(&Bfs::from_source(0), &path(3));
        assert!(run.mean_frontier() > 0.0);
    }
}
