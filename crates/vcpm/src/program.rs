//! The [`VertexProgram`] trait — the paper's three user-defined functions
//! plus initialization and iteration control.

use higraph_graph::{Csr, VertexId, Weight};
use std::fmt::Debug;

/// "Infinity" for 64-bit distance-like properties.
///
/// Chosen below `u64::MAX` so saturating arithmetic in `Process_Edge` never
/// wraps even after adding a maximum edge weight.
pub const INF: u64 = u64::MAX / 2;

/// A vertex-centric graph program in the paper's VCPM form.
///
/// Implementations must keep [`reduce`] **commutative and associative** —
/// the accelerator folds `Imm` values into `tProperty` in whatever order
/// the dataflow network delivers them, and correctness of the reproduction
/// is established by bit-comparing accelerator output against the reference
/// executor.
///
/// [`reduce`]: VertexProgram::reduce
pub trait VertexProgram {
    /// The per-vertex property type (the Property Array element of Fig. 1).
    type Prop: Copy + PartialEq + Debug + Send + Sync + 'static;

    /// Short human-readable name ("BFS", "SSSP", ...).
    fn name(&self) -> &'static str;

    /// Initial property of vertex `v`.
    fn init_prop(&self, v: VertexId, graph: &Csr) -> Self::Prop;

    /// The initially active vertices (iteration 0 frontier), in the order
    /// they are inserted into the ActiveVertex Array.
    fn initial_frontier(&self, graph: &Csr) -> Vec<VertexId>;

    /// Identity element of [`reduce`](VertexProgram::reduce): the value the
    /// tProperty Array is reset to at the start of every scatter phase.
    fn identity(&self) -> Self::Prop;

    /// `Process_Edge(u.prop, e.weight)` — the per-edge propagation function
    /// executed by the ePEs.
    fn process_edge(&self, u_prop: Self::Prop, weight: Weight) -> Self::Prop;

    /// `Reduce(v.tProp, Imm)` — the accumulation executed by the vPEs.
    /// Must be commutative and associative.
    fn reduce(&self, t_prop: Self::Prop, imm: Self::Prop) -> Self::Prop;

    /// `Apply(v.prop, v.tProp)` — the per-vertex update of the apply phase.
    /// `v` and the graph are provided for programs (like PageRank) whose
    /// apply step needs degree or vertex-count information.
    fn apply(&self, v: VertexId, prop: Self::Prop, t_prop: Self::Prop, graph: &Csr) -> Self::Prop;

    /// Upper bound on iterations, if the program does not converge to a
    /// fixed point by activation alone (e.g. PageRank). `None` means run
    /// until the frontier empties.
    fn max_iterations(&self) -> Option<u32> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inf_is_saturation_safe() {
        // Adding any 19-bit weight to INF must not wrap u64.
        assert!(INF.checked_add(u64::from(u32::MAX)).is_some());
    }
}
