//! Per-cycle bank-port accounting for interleaved on-chip buffers.
//!
//! The paper's data arrays are "divided into several parts and organized in
//! the fashion of interleaving" (Sec. 2.2). Each part (bank) serves one
//! access per cycle. [`BankPorts`] tracks which banks are claimed in the
//! current cycle and implements the paper's sharing rule for Offset Array
//! access (Sec. 4.1): a second requester may proceed if "their target
//! addresses are the same with those who have occupied the read channels".

/// Tracks per-cycle usage of `k` single-ported banks.
#[derive(Debug, Clone)]
pub struct BankPorts {
    /// `claims[b]` is the address bank `b` serves this cycle, if any.
    claims: Vec<Option<u64>>,
    /// Cumulative grants across all cycles.
    granted: u64,
    /// Cumulative conflicts (claim attempts that failed).
    conflicts: u64,
}

impl BankPorts {
    /// Creates the tracker for `k` banks.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        // lint:allow(panic-freedom): documented constructor panic: a memory needs at least one bank
        assert!(k > 0, "need at least one bank");
        BankPorts {
            claims: vec![None; k],
            granted: 0,
            conflicts: 0,
        }
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.claims.len()
    }

    /// Attempts to claim bank `bank` for `addr` this cycle.
    ///
    /// Succeeds if the bank is free, or already serving the *same* address
    /// (the shared-read rule). Returns whether the claim succeeded.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn try_claim(&mut self, bank: usize, addr: u64) -> bool {
        match self.claims[bank] {
            None => {
                self.claims[bank] = Some(addr);
                self.granted += 1;
                true
            }
            Some(existing) if existing == addr => {
                self.granted += 1;
                true
            }
            Some(_) => {
                self.conflicts += 1;
                false
            }
        }
    }

    /// Attempts to claim a *pair* of banks atomically (the one-to-two
    /// Offset Array pattern: `u` and `u+1`). Either both succeed or
    /// neither is claimed.
    pub fn try_claim_pair(&mut self, a: (usize, u64), b: (usize, u64)) -> bool {
        if self.would_grant(a.0, a.1) && self.would_grant_with(b.0, b.1, a) {
            let ok_a = self.try_claim(a.0, a.1);
            let ok_b = self.try_claim(b.0, b.1);
            debug_assert!(ok_a && ok_b);
            true
        } else {
            self.conflicts += 1;
            false
        }
    }

    /// Whether a claim on `bank` for `addr` would succeed right now.
    pub fn would_grant(&self, bank: usize, addr: u64) -> bool {
        match self.claims[bank] {
            None => true,
            Some(existing) => existing == addr,
        }
    }

    fn would_grant_with(&self, bank: usize, addr: u64, pending: (usize, u64)) -> bool {
        // Account for the not-yet-applied claim of the pair's first half.
        if bank == pending.0 {
            addr == pending.1
        } else {
            self.would_grant(bank, addr)
        }
    }

    /// Whether `bank` is unclaimed this cycle.
    pub fn is_free(&self, bank: usize) -> bool {
        self.claims[bank].is_none()
    }

    /// Clears all claims; call at the start of each cycle.
    pub fn reset(&mut self) {
        self.claims.iter_mut().for_each(|c| *c = None);
    }

    /// Cumulative successful claims.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Cumulative failed claims.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_banks_do_not_conflict() {
        let mut b = BankPorts::new(4);
        assert!(b.try_claim(0, 10));
        assert!(b.try_claim(1, 10));
        assert_eq!(b.conflicts(), 0);
    }

    #[test]
    fn same_bank_different_addr_conflicts() {
        let mut b = BankPorts::new(2);
        assert!(b.try_claim(0, 1));
        assert!(!b.try_claim(0, 2));
        assert_eq!(b.conflicts(), 1);
    }

    #[test]
    fn same_address_shares_the_port() {
        // Sec. 4.1: identical target addresses may share an occupied channel.
        let mut b = BankPorts::new(2);
        assert!(b.try_claim(0, 7));
        assert!(b.try_claim(0, 7));
        assert_eq!(b.granted(), 2);
        assert_eq!(b.conflicts(), 0);
    }

    #[test]
    fn pair_claim_is_atomic() {
        let mut b = BankPorts::new(3);
        assert!(b.try_claim(1, 5));
        // pair needs banks 0 and 1; bank 1 busy with different addr → both fail
        assert!(!b.try_claim_pair((0, 4), (1, 6)));
        assert!(b.is_free(0), "failed pair must not leave bank 0 claimed");
        // pair with matching shared address succeeds
        assert!(b.try_claim_pair((0, 4), (1, 5)));
    }

    #[test]
    fn pair_claim_same_bank_same_addr() {
        // wrap-around: u = k-1 needs banks k-1 and 0; with k=1 both halves
        // hit bank 0 and must carry the same address to succeed.
        let mut b = BankPorts::new(1);
        assert!(b.try_claim_pair((0, 3), (0, 3)));
        assert!(!b.try_claim_pair((0, 3), (0, 4)));
    }

    #[test]
    fn reset_clears_claims() {
        let mut b = BankPorts::new(2);
        assert!(b.try_claim(0, 1));
        b.reset();
        assert!(b.try_claim(0, 2));
    }
}
