//! Arbitration policies.
//!
//! Two arbiters appear in the paper's designs:
//!
//! * [`RoundRobinArbiter`] — the per-output arbitration of a conventional
//!   crossbar (GraphDynS / Graphicionado style),
//! * [`OddEvenArbiter`] — HiGraph's alternating-priority arbiter for Offset
//!   Array access (Sec. 4.1): "odd and even channels alternately have
//!   higher priority to issue vertices".

/// A work-conserving round-robin arbiter over `n` requesters.
///
/// Each call to [`grant`](RoundRobinArbiter::grant) picks the first
/// requester at or after the rotating priority pointer and advances the
/// pointer past it, guaranteeing starvation freedom.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    next: usize,
    n: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        // lint:allow(panic-freedom): documented constructor panic; fabric widths are validated before any arbiter is built
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobinArbiter { next: 0, n }
    }

    /// Grants one of the asserted request lines, if any.
    ///
    /// `requests[i] == true` means requester `i` wants the resource this
    /// cycle. Returns the granted index and rotates priority.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != n`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        // lint:allow(panic-freedom): documented API contract: request vectors are component-owned scratch sized at construction
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if requests[i] {
                self.next = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: an arbiter has at least one requester.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// HiGraph's odd-even alternating-priority arbiter (Sec. 4.1).
///
/// On even cycles the even channels have priority; on odd cycles the odd
/// channels do. The accelerator front-end asks which parity currently has
/// priority and issues high-priority channels unconditionally, letting
/// low-priority channels issue only into leftover bank ports.
#[derive(Debug, Clone, Default)]
pub struct OddEvenArbiter {
    odd_has_priority: bool,
}

impl OddEvenArbiter {
    /// Creates the arbiter with even channels prioritized first.
    pub fn new() -> Self {
        OddEvenArbiter::default()
    }

    /// Whether odd channels have priority in the current cycle.
    #[inline]
    pub fn odd_has_priority(&self) -> bool {
        self.odd_has_priority
    }

    /// Whether channel `ch` has priority in the current cycle.
    #[inline]
    pub fn has_priority(&self, ch: usize) -> bool {
        (ch % 2 == 1) == self.odd_has_priority
    }

    /// Advances to the next cycle, flipping the prioritized parity.
    #[inline]
    pub fn tick(&mut self) {
        self.odd_has_priority = !self.odd_has_priority;
    }

    /// Advances `cycles` cycles at once (fast-forward): parity flips once
    /// per cycle, so only its oddness matters.
    #[inline]
    pub fn advance(&mut self, cycles: u64) {
        if cycles % 2 == 1 {
            self.odd_has_priority = !self.odd_has_priority;
        }
    }
}

impl crate::snapshot::Snapshot for OddEvenArbiter {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.tag(b"OEAB");
        w.bool(self.odd_has_priority);
    }

    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        r.expect_tag(b"OEAB")?;
        self.odd_has_priority = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_fairly() {
        let mut a = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        assert_eq!(a.grant(&all), Some(0));
        assert_eq!(a.grant(&all), Some(1));
        assert_eq!(a.grant(&all), Some(2));
        assert_eq!(a.grant(&all), Some(0));
    }

    #[test]
    fn round_robin_skips_idle_requesters() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.grant(&[false, false, true, false]), Some(2));
        // pointer now at 3
        assert_eq!(a.grant(&[true, false, true, false]), Some(0));
    }

    #[test]
    fn round_robin_none_when_no_requests() {
        let mut a = RoundRobinArbiter::new(2);
        assert_eq!(a.grant(&[false, false]), None);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn round_robin_checks_width() {
        let mut a = RoundRobinArbiter::new(2);
        let _ = a.grant(&[true]);
    }

    #[test]
    fn odd_even_alternates() {
        let mut a = OddEvenArbiter::new();
        assert!(a.has_priority(0));
        assert!(a.has_priority(2));
        assert!(!a.has_priority(1));
        a.tick();
        assert!(a.has_priority(1));
        assert!(!a.has_priority(0));
        a.tick();
        assert!(a.has_priority(4));
    }

    #[test]
    fn no_starvation_over_two_cycles() {
        // every channel has priority at least once in any two cycles
        let mut a = OddEvenArbiter::new();
        for ch in 0..8 {
            let first = a.has_priority(ch);
            a.tick();
            let second = a.has_priority(ch);
            a.tick();
            assert!(first || second, "channel {ch} starved");
        }
    }
}
