//! The [`Network`] abstraction — the interface shared by every propagation
//! fabric in the reproduction (crossbar, MDP-network, naive nW1R FIFO).
//!
//! Fig. 5 (a) of the paper abstracts the problem all three solve: data from
//! multiple input channels must be directed to multiple output channels
//! selected by a destination address. The accelerator engine is written
//! against this trait, so swapping a crossbar for an MDP-network (the
//! paper's Opt-O / Opt-E / Opt-D ablations and the Fig. 12 comparison) is a
//! configuration change, not a code change.

use crate::clock::ClockedComponent;
use crate::stats::NetworkStats;

/// A routable payload: knows which output channel it must reach.
pub trait Packet {
    /// Index of the destination output channel.
    fn dest(&self) -> usize;
}

/// A multi-input multi-output propagation fabric with per-cycle semantics.
///
/// The sequential half of the protocol — `tick`, `in_flight`, drain
/// detection — comes from the [`ClockedComponent`] supertrait; this trait
/// adds the combinational routing interface. See the crate-level docs for
/// the push → pop → tick cycle protocol.
pub trait Network<T: Packet>: ClockedComponent {
    /// Number of input channels.
    fn num_inputs(&self) -> usize;

    /// Number of output channels.
    fn num_outputs(&self) -> usize;

    /// Whether input `input` can accept `packet` this cycle.
    ///
    /// Acceptance may depend on the packet's destination (e.g. which
    /// stage-0 FIFO it routes to inside an MDP-network).
    fn can_accept(&self, input: usize, packet: &T) -> bool;

    /// Offers `packet` at input channel `input`.
    ///
    /// # Errors
    ///
    /// Returns `Err(packet)` (handing the packet back) if the input cannot
    /// accept it this cycle; the producer must stall and retry.
    fn push(&mut self, input: usize, packet: T) -> Result<(), T>;

    /// The packet currently presented at output `output`, if any.
    fn peek(&self, output: usize) -> Option<&T>;

    /// Consumes the packet presented at output `output`.
    fn pop(&mut self, output: usize) -> Option<T>;

    /// Whether the fabric holds no packets.
    fn is_empty(&self) -> bool {
        self.is_drained()
    }

    /// Cumulative statistics.
    fn stats(&self) -> &NetworkStats;
}

#[cfg(test)]
pub(crate) mod testing {
    use super::Packet;

    /// Minimal test packet: `(dest, tag)`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TestPacket {
        pub dest: usize,
        pub tag: u64,
    }

    impl Packet for TestPacket {
        fn dest(&self) -> usize {
            self.dest
        }
    }
}
