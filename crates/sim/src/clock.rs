//! The cycle protocol as a first-class abstraction: [`ClockedComponent`]
//! and the [`Scheduler`] that drives any set of components.
//!
//! Every stateful block in the reproduction follows the same per-cycle
//! protocol (see the crate docs): consumers pop, producers push, then one
//! `tick()` advances the clock. Before this module existed the protocol
//! was prose in the crate docs and a hand-woven loop in the accelerator
//! engine; now it is a trait plus a driver, so any composition of
//! components — a single fabric under test, or the engine's whole
//! scatter pipeline — is clocked by the same code.
//!
//! # Driving a component
//!
//! [`Scheduler::drain`] runs the canonical loop: each cycle it first calls
//! the caller's *combinational phase* (the pop/push stage logic, evaluated
//! consumer-first), then [`ClockedComponent::tick`] (the clock edge), until
//! [`ClockedComponent::is_drained`] reports no work left. A stall guard
//! bounds the loop so a backpressure deadlock surfaces as a
//! [`StallError`] instead of a hang.
//!
//! # Event-driven fast-forward
//!
//! With long off-chip latencies most simulated cycles are idle waits. A
//! component can advertise that through
//! [`ClockedComponent::next_activity`]: the number of upcoming cycles
//! during which it is guaranteed to neither change observable state nor
//! enable the combinational phase to act (`Some(0)` = busy now, `None` =
//! quiescent until new input arrives). A fast-forward scheduler
//! ([`Scheduler::with_fast_forward`]) takes the component-wide minimum
//! and, when it is strictly positive, commits the whole idle window in
//! O(1) via [`ClockedComponent::skip`] instead of O(cycles) ticking —
//! bit-identical to the naive loop, including every cycle counter. See
//! `docs/simulation.md` for the full contract.
//!
//! ```
//! use higraph_sim::clock::{ClockedComponent, Scheduler};
//! use higraph_sim::{CrossbarNetwork, Network, Packet};
//!
//! #[derive(Debug)]
//! struct P(usize);
//! impl Packet for P {
//!     fn dest(&self) -> usize { self.0 }
//! }
//!
//! let mut net = CrossbarNetwork::new(4, 4, 8);
//! net.push(0, P(2)).ok();
//! let mut got = 0;
//! let mut scheduler = Scheduler::new();
//! let cycles = scheduler
//!     .drain(&mut net, |net, _cycle| {
//!         if net.pop(2).is_some() {
//!             got += 1;
//!         }
//!     })
//!     .expect("no stall");
//! assert_eq!(got, 1);
//! assert!(cycles >= 1);
//! assert_eq!(scheduler.cycles(), cycles);
//! ```

use crate::arbiter::OddEvenArbiter;
use crate::control::DrainError;
use crate::stats::NetworkStats;
use std::collections::VecDeque;
use std::fmt;

/// A block of hardware state advanced by the common clock.
///
/// This is the protocol's sequential half: [`crate::Network`] (and every other
/// stage interface) is layered *on top* of it, so `tick` and the
/// in-flight accounting are defined exactly once per component.
/// Implementations must uphold the one-stage-per-cycle contract: state
/// pushed into the component becomes observable at the earliest on the
/// *next* cycle's combinational phase, never the same one.
pub trait ClockedComponent {
    /// Advances internal state by one cycle (the clock edge).
    fn tick(&mut self);

    /// Number of items (packets, ranges, queued entries) currently held.
    ///
    /// Purely combinational components (arbiters, priority state) hold
    /// nothing and return 0.
    fn in_flight(&self) -> usize;

    /// Whether the component holds no in-flight work.
    fn is_drained(&self) -> bool {
        self.in_flight() == 0
    }

    /// The component's cumulative fabric statistics, if it keeps any.
    ///
    /// This is the unified collection point: a driver can harvest stats
    /// from any component mix without knowing the concrete fabric types.
    fn network_stats(&self) -> Option<NetworkStats> {
        None
    }

    /// How many upcoming cycles this component is guaranteed to stay
    /// inert, assuming no new external input.
    ///
    /// * `Some(0)` — the component is busy now: its next `tick` moves
    ///   state, or it holds output a consumer could pop, or the
    ///   combinational phase touching it would have any side effect
    ///   (including statistics counters);
    /// * `Some(k)` — the next `k` ticks are *trivial* (time-keeping
    ///   counters only; committed in bulk by [`ClockedComponent::skip`]),
    ///   and nothing a combinational phase does with this component
    ///   during those cycles can have any effect;
    /// * `None` — quiescent: nothing will ever happen without new input.
    ///
    /// The hint must never be over-optimistic (claiming more idle cycles
    /// than real — [`ClockedComponent::skip`] implementations
    /// debug-assert against that) but may be arbitrarily conservative;
    /// the default reports `Some(0)` whenever the component holds work,
    /// which disables fast-forward and is always safe. It must also be
    /// monotone under idleness: if a component reports `Some(k)`, then
    /// after `j <= k` trivial ticks it reports at least `Some(k - j)`.
    ///
    /// The receiver is `&mut self` so composites can maintain an indexed
    /// wake registry ([`crate::wheel::EventWheel`]) while answering;
    /// observable state must not change — calling this any number of
    /// times between ticks returns the same value (leaf components keep
    /// pure `&self` window helpers that this method delegates to, which
    /// `skip` debug-asserts and the debug-build poll oracles use).
    fn next_activity(&mut self) -> Option<u64> {
        if self.is_drained() {
            None
        } else {
            Some(0)
        }
    }

    /// Whether this component answers [`ClockedComponent::next_activity`]
    /// through an indexed event wheel rather than an O(components) poll.
    /// Purely observational: the scheduler uses it to attribute window
    /// selections in the host-performance trajectory
    /// ([`crate::selection`]).
    fn wheel_indexed(&self) -> bool {
        false
    }

    /// Commits `cycles` idle cycles at once — exactly equivalent to
    /// `cycles` calls to [`ClockedComponent::tick`] under the
    /// no-activity precondition of [`ClockedComponent::next_activity`].
    ///
    /// Implementations that keep per-cycle state (cycle counters,
    /// rotating priorities, timestamps) advance it here in O(1); the
    /// default falls back to per-cycle ticking, which is always correct.
    /// Implementations should debug-assert that `cycles` does not overrun
    /// their own activity window, so an over-optimistic
    /// [`ClockedComponent::next_activity`] is caught in debug builds
    /// instead of silently corrupting timing.
    fn skip(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }
}

/// Folds two activity hints: the composite can act as soon as either
/// part can (`None` = quiescent = identity).
pub fn min_activity(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

/// A bounded FIFO holds work but has no sequential logic of its own.
impl<T> ClockedComponent for crate::fifo::Fifo<T> {
    fn tick(&mut self) {}

    fn in_flight(&self) -> usize {
        self.len()
    }

    /// Queued items are poppable *now*; an empty FIFO never acts alone.
    fn next_activity(&mut self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn skip(&mut self, _cycles: u64) {}
}

/// Plain queues (the engine's ActiveVertex parts) count as storage.
impl<T> ClockedComponent for VecDeque<T> {
    fn tick(&mut self) {}

    fn in_flight(&self) -> usize {
        self.len()
    }

    fn next_activity(&mut self) -> Option<u64> {
        if self.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn skip(&mut self, _cycles: u64) {}
}

/// The odd-even arbiter's only state is its alternating priority bit.
impl ClockedComponent for OddEvenArbiter {
    fn tick(&mut self) {
        OddEvenArbiter::tick(self);
    }

    fn in_flight(&self) -> usize {
        0
    }

    /// The parity flip is pure time-keeping; owners fold it into their
    /// own activity hint.
    fn next_activity(&mut self) -> Option<u64> {
        None
    }

    fn skip(&mut self, cycles: u64) {
        self.advance(cycles);
    }
}

/// A homogeneous bank of components clocks as one.
impl<C: ClockedComponent> ClockedComponent for Vec<C> {
    fn tick(&mut self) {
        for c in self.iter_mut() {
            c.tick();
        }
    }

    fn in_flight(&self) -> usize {
        self.iter().map(|c| c.in_flight()).sum()
    }

    fn is_drained(&self) -> bool {
        self.iter().all(ClockedComponent::is_drained)
    }

    fn next_activity(&mut self) -> Option<u64> {
        self.iter_mut()
            .map(|c| c.next_activity())
            .fold(None, min_activity)
    }

    fn skip(&mut self, cycles: u64) {
        for c in self.iter_mut() {
            c.skip(cycles);
        }
    }
}

/// The scheduler hit its stall guard: no completion within the cycle
/// budget, i.e. the pipeline deadlocked or livelocked under backpressure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallError {
    /// Cycles executed in the stalled drain.
    pub cycles: u64,
    /// The guard that was exceeded.
    pub limit: u64,
}

impl fmt::Display for StallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drain stalled: no completion after {} cycles (guard: {})",
            self.cycles, self.limit
        )
    }
}

impl std::error::Error for StallError {}

/// Default stall guard for [`Scheduler::drain`] when the caller does not
/// provide a workload-derived bound.
pub const DEFAULT_STALL_GUARD: u64 = 1_000_000;

/// One step of a [`Scheduler::drain_with`] drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainStep {
    /// A normal cycle: evaluate the combinational phase (the clock edge
    /// follows). The payload is the in-drain cycle index, from zero.
    Cycle(u64),
    /// Fast-forward bulk-committed `cycles` idle cycles starting at
    /// in-drain cycle `start`. The callback must commit whatever
    /// per-cycle effects its combinational phase accrues even when no
    /// work moves (idle counters, rotating priorities); component state
    /// itself was already advanced by [`ClockedComponent::skip`].
    Skipped {
        /// First skipped in-drain cycle index.
        start: u64,
        /// Number of idle cycles committed.
        cycles: u64,
    },
}

/// Drives [`ClockedComponent`]s through the pop → push → tick protocol and
/// accounts the cycles they consume.
///
/// One scheduler instance accumulates cycles across many drains (the
/// engine reuses one per program execution, so `cycles()` is the total
/// scatter cycle count across iterations and slices).
#[derive(Debug, Clone)]
pub struct Scheduler {
    cycles: u64,
    skipped: u64,
    stall_guard: u64,
    fast_forward: bool,
    /// Fast-forward window selections answered by an event wheel, across
    /// this scheduler's drains (see [`ClockedComponent::wheel_indexed`]).
    wheel_selections: u64,
    /// Fast-forward window selections answered by the legacy poll.
    poll_selections: u64,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl Scheduler {
    /// A scheduler with the [`DEFAULT_STALL_GUARD`], ticking every cycle.
    pub fn new() -> Self {
        Scheduler {
            cycles: 0,
            skipped: 0,
            stall_guard: DEFAULT_STALL_GUARD,
            fast_forward: false,
            wheel_selections: 0,
            poll_selections: 0,
        }
    }

    /// Sets the stall guard applied to subsequent drains.
    pub fn with_stall_guard(mut self, limit: u64) -> Self {
        self.stall_guard = limit.max(1);
        self
    }

    /// Replaces the stall guard (e.g. re-derived per workload phase).
    pub fn set_stall_guard(&mut self, limit: u64) {
        self.stall_guard = limit.max(1);
    }

    /// Enables or disables event-driven fast-forward: when the drained
    /// component reports a strictly positive [`next_activity`] window,
    /// the whole window is committed in O(1) via [`skip`] instead of
    /// O(cycles) ticking. Cycle accounting (the drain's return value,
    /// [`Scheduler::cycles`], every component counter) is bit-identical
    /// to the naive loop.
    ///
    /// Callers whose combinational phase has per-cycle effects even on
    /// idle cycles must drive through [`Scheduler::drain_with`] and
    /// commit them on [`DrainStep::Skipped`].
    ///
    /// [`next_activity`]: ClockedComponent::next_activity
    /// [`skip`]: ClockedComponent::skip
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Whether event-driven fast-forward is enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Total cycles driven by this scheduler so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Of [`Scheduler::cycles`], how many were bulk-committed by
    /// fast-forward instead of individually ticked.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped
    }

    /// Fast-forward window selections this scheduler has performed, as
    /// `(wheel_indexed, polled)` — attributed per drained component via
    /// [`ClockedComponent::wheel_indexed`]. Also flushed to the
    /// process-wide [`crate::selection`] tallies after every drain.
    pub fn window_selections(&self) -> (u64, u64) {
        (self.wheel_selections, self.poll_selections)
    }

    /// Runs `component` until it drains.
    ///
    /// Per cycle: `combinational(component, cycle_index)` evaluates the
    /// stage logic (pops and pushes, consumer-first), then the clock edge
    /// `component.tick()` commits it. `cycle_index` counts from zero
    /// within this drain.
    ///
    /// Returns the number of cycles this drain consumed.
    ///
    /// # Errors
    ///
    /// [`StallError`] if the component does not drain within the stall
    /// guard; the scheduler's cycle count still includes the aborted
    /// cycles, so diagnostics can report where time went.
    pub fn drain<C, F>(
        &mut self,
        component: &mut C,
        mut combinational: F,
    ) -> Result<u64, StallError>
    where
        C: ClockedComponent + ?Sized,
        F: FnMut(&mut C, u64),
    {
        self.drain_with(component, |component, step| {
            if let DrainStep::Cycle(cycle) = step {
                combinational(component, cycle);
            }
        })
    }

    /// Like [`Scheduler::drain`], but the callback also observes
    /// fast-forwarded idle windows ([`DrainStep::Skipped`]) so it can
    /// commit per-cycle effects its combinational phase would have had —
    /// the accelerator engine uses this to keep starvation and
    /// memory-stall counters bit-identical under fast-forward.
    ///
    /// With fast-forward disabled (the default) every step is
    /// [`DrainStep::Cycle`] and this is exactly the naive loop.
    ///
    /// # Errors
    ///
    /// [`StallError`] as for [`Scheduler::drain`]; a fast-forwarded
    /// drain reports the same `cycles` as the naive loop would (idle
    /// windows never advance past the guard).
    pub fn drain_with<C, F>(&mut self, component: &mut C, f: F) -> Result<u64, StallError>
    where
        C: ClockedComponent + ?Sized,
        F: FnMut(&mut C, DrainStep),
    {
        self.drain_impl(component, None, f).map_err(|e| match e {
            DrainError::Stall(stall) => stall,
            DrainError::Interrupted { .. } => {
                // lint:allow(panic-freedom): no control was attached, so `drain_impl` can never construct Interrupted
                unreachable!("uncontrolled drain cannot be interrupted")
            }
        })
    }

    /// Like [`Scheduler::drain_with`], but polls `control` for
    /// cooperative cancellation every
    /// [`crate::control::CANCEL_POLL_INTERVAL`] drained cycles. A run
    /// that completes is bit-identical to an uncontrolled drain —
    /// polling never alters simulated behaviour.
    ///
    /// Parking and budgets are *not* checked here: they are
    /// boundary-only decisions the engines make between drains, where
    /// the pipeline state is trivially checkpointable.
    ///
    /// # Errors
    ///
    /// [`DrainError::Stall`] as for [`Scheduler::drain_with`];
    /// [`DrainError::Interrupted`] when `control` observes a
    /// cancellation request (the caller discards the partial drain).
    pub fn drain_ctrl<C, F>(
        &mut self,
        component: &mut C,
        control: &crate::control::RunControl,
        f: F,
    ) -> Result<u64, DrainError>
    where
        C: ClockedComponent + ?Sized,
        F: FnMut(&mut C, DrainStep),
    {
        self.drain_impl(component, Some(control), f)
    }

    fn drain_impl<C, F>(
        &mut self,
        component: &mut C,
        control: Option<&crate::control::RunControl>,
        mut f: F,
    ) -> Result<u64, DrainError>
    where
        C: ClockedComponent + ?Sized,
        F: FnMut(&mut C, DrainStep),
    {
        use crate::control::CANCEL_POLL_INTERVAL;
        let indexed = component.wheel_indexed();
        let mut next_poll = 0u64;
        let mut selections = 0u64;
        let mut spent = 0u64;
        let result = loop {
            if let Some(control) = control {
                if spent >= next_poll {
                    if control.cancelled() {
                        break Err(DrainError::Interrupted { cycles: spent });
                    }
                    next_poll = spent + CANCEL_POLL_INTERVAL;
                }
            }
            if component.is_drained() {
                break Ok(spent);
            }
            if spent >= self.stall_guard {
                break Err(DrainError::Stall(StallError {
                    cycles: spent,
                    limit: self.stall_guard,
                }));
            }
            if self.fast_forward {
                // A quiescent-but-undrained component is a deadlock: no
                // input will ever arrive inside a drain, so burn the
                // remaining guard in one step (the naive loop would tick
                // it away) and report the stall on the next iteration.
                selections += 1;
                let window = component.next_activity().unwrap_or(u64::MAX);
                if window > 0 {
                    let window = window.min(self.stall_guard - spent);
                    #[cfg(debug_assertions)]
                    let in_flight_before = component.in_flight();
                    component.skip(window);
                    #[cfg(debug_assertions)]
                    debug_assert_eq!(
                        component.in_flight(),
                        in_flight_before,
                        "skip() must not create or retire in-flight work"
                    );
                    f(
                        component,
                        DrainStep::Skipped {
                            start: spent,
                            cycles: window,
                        },
                    );
                    spent += window;
                    self.cycles += window;
                    self.skipped += window;
                    continue;
                }
            }
            f(component, DrainStep::Cycle(spent));
            component.tick();
            spent += 1;
            self.cycles += 1;
        };
        if selections > 0 {
            if indexed {
                self.wheel_selections += selections;
                crate::selection::record(selections, 0);
            } else {
                self.poll_selections += selections;
                crate::selection::record(0, selections);
            }
        }
        result
    }

    /// Runs `component` for exactly `cycles` cycles regardless of drain
    /// state (warm-up, fixed-horizon throughput measurements).
    pub fn run_for<C, F>(&mut self, component: &mut C, cycles: u64, mut combinational: F)
    where
        C: ClockedComponent + ?Sized,
        F: FnMut(&mut C, u64),
    {
        for cycle in 0..cycles {
            combinational(component, cycle);
            component.tick();
            self.cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::CrossbarNetwork;
    use crate::fifo::Fifo;
    use crate::network::testing::TestPacket;
    use crate::network::Network;

    #[test]
    fn drain_stops_when_component_empties() {
        let mut net: CrossbarNetwork<TestPacket> = CrossbarNetwork::new(2, 2, 4);
        net.push(0, TestPacket { dest: 1, tag: 7 }).unwrap();
        let mut seen = Vec::new();
        let mut s = Scheduler::new();
        let spent = s
            .drain(&mut net, |net, _| {
                if let Some(p) = net.pop(1) {
                    seen.push(p.tag);
                }
            })
            .expect("drains");
        assert_eq!(seen, [7]);
        assert!(spent >= 1);
        assert_eq!(s.cycles(), spent);
    }

    #[test]
    fn drain_of_drained_component_is_free() {
        let mut fifo: Fifo<u32> = Fifo::new(4);
        let mut s = Scheduler::new();
        let spent = s.drain(&mut fifo, |_, _| {}).expect("empty");
        assert_eq!(spent, 0);
        assert_eq!(s.cycles(), 0);
    }

    #[test]
    fn stall_guard_reports_deadlock() {
        // A FIFO nobody pops can never drain.
        let mut fifo: Fifo<u32> = Fifo::new(4);
        fifo.push(9).unwrap();
        let mut s = Scheduler::new().with_stall_guard(50);
        let err = s.drain(&mut fifo, |_, _| {}).expect_err("stalls");
        assert_eq!(
            err,
            StallError {
                cycles: 50,
                limit: 50
            }
        );
        assert_eq!(s.cycles(), 50);
        assert!(err.to_string().contains("50"));
    }

    #[test]
    fn cycles_accumulate_across_drains() {
        let mut s = Scheduler::new();
        for round in 1..=3u64 {
            let mut net: CrossbarNetwork<TestPacket> = CrossbarNetwork::new(2, 2, 4);
            net.push(
                0,
                TestPacket {
                    dest: 0,
                    tag: round,
                },
            )
            .unwrap();
            s.drain(&mut net, |net, _| {
                net.pop(0);
            })
            .expect("drains");
        }
        assert!(s.cycles() >= 3);
    }

    #[test]
    fn vec_of_components_clocks_as_one() {
        let mut bank: Vec<Fifo<u32>> = vec![Fifo::new(2), Fifo::new(2)];
        assert!(bank.is_drained());
        bank[1].push(3).unwrap();
        assert!(!bank.is_drained());
        bank.tick(); // no-op for FIFOs, must not panic
        bank[1].pop();
        assert!(bank.is_drained());
    }

    #[test]
    fn run_for_counts_fixed_cycles() {
        let mut net: CrossbarNetwork<TestPacket> = CrossbarNetwork::new(2, 2, 4);
        let mut s = Scheduler::new();
        s.run_for(&mut net, 10, |_, _| {});
        assert_eq!(s.cycles(), 10);
    }

    /// A component that becomes poppable `delay` ticks after each load —
    /// the smallest timed component, for exercising the fast path.
    #[derive(Debug)]
    struct Timed {
        item: Option<u64>,
        ready_in: u64,
        ticks: u64,
    }

    impl Timed {
        fn loaded(delay: u64) -> Self {
            Timed {
                item: Some(7),
                ready_in: delay,
                ticks: 0,
            }
        }

        fn pop(&mut self) -> Option<u64> {
            if self.ready_in == 0 {
                self.item.take()
            } else {
                None
            }
        }
    }

    impl ClockedComponent for Timed {
        fn tick(&mut self) {
            self.ticks += 1;
            self.ready_in = self.ready_in.saturating_sub(1);
        }

        fn in_flight(&self) -> usize {
            usize::from(self.item.is_some())
        }

        fn next_activity(&mut self) -> Option<u64> {
            self.item.map(|_| self.ready_in)
        }

        fn skip(&mut self, cycles: u64) {
            debug_assert!(
                cycles <= self.ready_in,
                "skip() overran the activity window"
            );
            self.ticks += cycles;
            self.ready_in -= cycles;
        }
    }

    #[test]
    fn fast_forward_skips_idle_windows_with_identical_accounting() {
        let run = |fast| {
            let mut t = Timed::loaded(100);
            let mut s = Scheduler::new().with_fast_forward(fast);
            let mut cycle_steps = 0u64;
            let mut skipped = 0u64;
            let spent = s
                .drain_with(&mut t, |t, step| match step {
                    DrainStep::Cycle(_) => {
                        cycle_steps += 1;
                        t.pop();
                    }
                    DrainStep::Skipped { cycles, .. } => skipped += cycles,
                })
                .expect("drains");
            (spent, s.cycles(), t.ticks, cycle_steps, skipped)
        };
        let naive = run(false);
        let fast = run(true);
        // identical simulated time, component clock, and scheduler clock
        assert_eq!(naive.0, fast.0);
        assert_eq!(naive.1, fast.1);
        assert_eq!(naive.2, fast.2);
        // …but the fast drive evaluated the combinational phase on only
        // the active cycles
        assert_eq!(naive.3, naive.0);
        assert!(fast.3 < naive.3, "fast {} vs naive {}", fast.3, naive.3);
        assert_eq!(fast.4 + fast.3, fast.0);
    }

    #[test]
    fn fast_forward_stall_matches_naive_cycle_count() {
        // A FIFO nobody pops deadlocks; both modes must report the same
        // StallError.
        let mut naive: Fifo<u32> = Fifo::new(2);
        naive.push(1).unwrap();
        let err_naive = Scheduler::new()
            .with_stall_guard(40)
            .drain(&mut naive, |_, _| {})
            .expect_err("stalls");
        let mut fast: Fifo<u32> = Fifo::new(2);
        fast.push(1).unwrap();
        let err_fast = Scheduler::new()
            .with_stall_guard(40)
            .with_fast_forward(true)
            .drain(&mut fast, |_, _| {})
            .expect_err("stalls");
        assert_eq!(err_naive, err_fast);
    }

    #[test]
    fn default_activity_hint_disables_skipping() {
        // A busy component without an overridden hint reports Some(0):
        // the fast path degenerates to the naive loop.
        let mut net: CrossbarNetwork<TestPacket> = CrossbarNetwork::new(2, 2, 4);
        net.push(0, TestPacket { dest: 1, tag: 7 }).unwrap();
        assert_eq!(net.next_activity(), Some(0));
        let mut s = Scheduler::new().with_fast_forward(true);
        let mut skipped = false;
        s.drain_with(&mut net, |net, step| match step {
            DrainStep::Cycle(_) => {
                net.pop(1);
            }
            DrainStep::Skipped { .. } => skipped = true,
        })
        .expect("drains");
        assert!(!skipped);
    }

    #[test]
    fn min_activity_treats_none_as_quiescent() {
        assert_eq!(min_activity(None, None), None);
        assert_eq!(min_activity(Some(3), None), Some(3));
        assert_eq!(min_activity(None, Some(4)), Some(4));
        assert_eq!(min_activity(Some(3), Some(4)), Some(3));
    }

    #[test]
    fn odd_even_skip_advances_parity() {
        let mut a = OddEvenArbiter::new();
        assert!(a.has_priority(0));
        ClockedComponent::skip(&mut a, 3);
        assert!(a.has_priority(1), "odd parity after an odd skip");
        ClockedComponent::skip(&mut a, 2);
        assert!(a.has_priority(1), "even skip preserves parity");
    }

    #[test]
    fn stats_collection_is_uniform() {
        let mut net: CrossbarNetwork<TestPacket> = CrossbarNetwork::new(2, 2, 4);
        net.push(0, TestPacket { dest: 0, tag: 1 }).unwrap();
        let stats = ClockedComponent::network_stats(&net).expect("fabrics keep stats");
        assert_eq!(stats.accepted, 1);
        let fifo: Fifo<u32> = Fifo::new(1);
        assert!(ClockedComponent::network_stats(&fifo).is_none());
    }
}
