//! The cycle protocol as a first-class abstraction: [`ClockedComponent`]
//! and the [`Scheduler`] that drives any set of components.
//!
//! Every stateful block in the reproduction follows the same per-cycle
//! protocol (see the crate docs): consumers pop, producers push, then one
//! `tick()` advances the clock. Before this module existed the protocol
//! was prose in the crate docs and a hand-woven loop in the accelerator
//! engine; now it is a trait plus a driver, so any composition of
//! components — a single fabric under test, or the engine's whole
//! scatter pipeline — is clocked by the same code.
//!
//! # Driving a component
//!
//! [`Scheduler::drain`] runs the canonical loop: each cycle it first calls
//! the caller's *combinational phase* (the pop/push stage logic, evaluated
//! consumer-first), then [`ClockedComponent::tick`] (the clock edge), until
//! [`ClockedComponent::is_drained`] reports no work left. A stall guard
//! bounds the loop so a backpressure deadlock surfaces as a
//! [`StallError`] instead of a hang.
//!
//! ```
//! use higraph_sim::clock::{ClockedComponent, Scheduler};
//! use higraph_sim::{CrossbarNetwork, Network, Packet};
//!
//! #[derive(Debug)]
//! struct P(usize);
//! impl Packet for P {
//!     fn dest(&self) -> usize { self.0 }
//! }
//!
//! let mut net = CrossbarNetwork::new(4, 4, 8);
//! net.push(0, P(2)).ok();
//! let mut got = 0;
//! let mut scheduler = Scheduler::new();
//! let cycles = scheduler
//!     .drain(&mut net, |net, _cycle| {
//!         if net.pop(2).is_some() {
//!             got += 1;
//!         }
//!     })
//!     .expect("no stall");
//! assert_eq!(got, 1);
//! assert!(cycles >= 1);
//! assert_eq!(scheduler.cycles(), cycles);
//! ```

use crate::arbiter::OddEvenArbiter;
use crate::stats::NetworkStats;
use std::collections::VecDeque;
use std::fmt;

/// A block of hardware state advanced by the common clock.
///
/// This is the protocol's sequential half: [`crate::Network`] (and every other
/// stage interface) is layered *on top* of it, so `tick` and the
/// in-flight accounting are defined exactly once per component.
/// Implementations must uphold the one-stage-per-cycle contract: state
/// pushed into the component becomes observable at the earliest on the
/// *next* cycle's combinational phase, never the same one.
pub trait ClockedComponent {
    /// Advances internal state by one cycle (the clock edge).
    fn tick(&mut self);

    /// Number of items (packets, ranges, queued entries) currently held.
    ///
    /// Purely combinational components (arbiters, priority state) hold
    /// nothing and return 0.
    fn in_flight(&self) -> usize;

    /// Whether the component holds no in-flight work.
    fn is_drained(&self) -> bool {
        self.in_flight() == 0
    }

    /// The component's cumulative fabric statistics, if it keeps any.
    ///
    /// This is the unified collection point: a driver can harvest stats
    /// from any component mix without knowing the concrete fabric types.
    fn network_stats(&self) -> Option<NetworkStats> {
        None
    }
}

/// A bounded FIFO holds work but has no sequential logic of its own.
impl<T> ClockedComponent for crate::fifo::Fifo<T> {
    fn tick(&mut self) {}

    fn in_flight(&self) -> usize {
        self.len()
    }
}

/// Plain queues (the engine's ActiveVertex parts) count as storage.
impl<T> ClockedComponent for VecDeque<T> {
    fn tick(&mut self) {}

    fn in_flight(&self) -> usize {
        self.len()
    }
}

/// The odd-even arbiter's only state is its alternating priority bit.
impl ClockedComponent for OddEvenArbiter {
    fn tick(&mut self) {
        OddEvenArbiter::tick(self);
    }

    fn in_flight(&self) -> usize {
        0
    }
}

/// A homogeneous bank of components clocks as one.
impl<C: ClockedComponent> ClockedComponent for Vec<C> {
    fn tick(&mut self) {
        for c in self.iter_mut() {
            c.tick();
        }
    }

    fn in_flight(&self) -> usize {
        self.iter().map(|c| c.in_flight()).sum()
    }

    fn is_drained(&self) -> bool {
        self.iter().all(ClockedComponent::is_drained)
    }
}

/// The scheduler hit its stall guard: no completion within the cycle
/// budget, i.e. the pipeline deadlocked or livelocked under backpressure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallError {
    /// Cycles executed in the stalled drain.
    pub cycles: u64,
    /// The guard that was exceeded.
    pub limit: u64,
}

impl fmt::Display for StallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drain stalled: no completion after {} cycles (guard: {})",
            self.cycles, self.limit
        )
    }
}

impl std::error::Error for StallError {}

/// Default stall guard for [`Scheduler::drain`] when the caller does not
/// provide a workload-derived bound.
pub const DEFAULT_STALL_GUARD: u64 = 1_000_000;

/// Drives [`ClockedComponent`]s through the pop → push → tick protocol and
/// accounts the cycles they consume.
///
/// One scheduler instance accumulates cycles across many drains (the
/// engine reuses one per program execution, so `cycles()` is the total
/// scatter cycle count across iterations and slices).
#[derive(Debug, Clone)]
pub struct Scheduler {
    cycles: u64,
    stall_guard: u64,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl Scheduler {
    /// A scheduler with the [`DEFAULT_STALL_GUARD`].
    pub fn new() -> Self {
        Scheduler {
            cycles: 0,
            stall_guard: DEFAULT_STALL_GUARD,
        }
    }

    /// Sets the stall guard applied to subsequent drains.
    pub fn with_stall_guard(mut self, limit: u64) -> Self {
        self.stall_guard = limit.max(1);
        self
    }

    /// Replaces the stall guard (e.g. re-derived per workload phase).
    pub fn set_stall_guard(&mut self, limit: u64) {
        self.stall_guard = limit.max(1);
    }

    /// Total cycles driven by this scheduler so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Runs `component` until it drains.
    ///
    /// Per cycle: `combinational(component, cycle_index)` evaluates the
    /// stage logic (pops and pushes, consumer-first), then the clock edge
    /// `component.tick()` commits it. `cycle_index` counts from zero
    /// within this drain.
    ///
    /// Returns the number of cycles this drain consumed.
    ///
    /// # Errors
    ///
    /// [`StallError`] if the component does not drain within the stall
    /// guard; the scheduler's cycle count still includes the aborted
    /// cycles, so diagnostics can report where time went.
    pub fn drain<C, F>(
        &mut self,
        component: &mut C,
        mut combinational: F,
    ) -> Result<u64, StallError>
    where
        C: ClockedComponent + ?Sized,
        F: FnMut(&mut C, u64),
    {
        let mut spent = 0u64;
        while !component.is_drained() {
            if spent >= self.stall_guard {
                return Err(StallError {
                    cycles: spent,
                    limit: self.stall_guard,
                });
            }
            combinational(component, spent);
            component.tick();
            spent += 1;
            self.cycles += 1;
        }
        Ok(spent)
    }

    /// Runs `component` for exactly `cycles` cycles regardless of drain
    /// state (warm-up, fixed-horizon throughput measurements).
    pub fn run_for<C, F>(&mut self, component: &mut C, cycles: u64, mut combinational: F)
    where
        C: ClockedComponent + ?Sized,
        F: FnMut(&mut C, u64),
    {
        for cycle in 0..cycles {
            combinational(component, cycle);
            component.tick();
            self.cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::CrossbarNetwork;
    use crate::fifo::Fifo;
    use crate::network::testing::TestPacket;
    use crate::network::Network;

    #[test]
    fn drain_stops_when_component_empties() {
        let mut net: CrossbarNetwork<TestPacket> = CrossbarNetwork::new(2, 2, 4);
        net.push(0, TestPacket { dest: 1, tag: 7 }).unwrap();
        let mut seen = Vec::new();
        let mut s = Scheduler::new();
        let spent = s
            .drain(&mut net, |net, _| {
                if let Some(p) = net.pop(1) {
                    seen.push(p.tag);
                }
            })
            .expect("drains");
        assert_eq!(seen, [7]);
        assert!(spent >= 1);
        assert_eq!(s.cycles(), spent);
    }

    #[test]
    fn drain_of_drained_component_is_free() {
        let mut fifo: Fifo<u32> = Fifo::new(4);
        let mut s = Scheduler::new();
        let spent = s.drain(&mut fifo, |_, _| {}).expect("empty");
        assert_eq!(spent, 0);
        assert_eq!(s.cycles(), 0);
    }

    #[test]
    fn stall_guard_reports_deadlock() {
        // A FIFO nobody pops can never drain.
        let mut fifo: Fifo<u32> = Fifo::new(4);
        fifo.push(9).unwrap();
        let mut s = Scheduler::new().with_stall_guard(50);
        let err = s.drain(&mut fifo, |_, _| {}).expect_err("stalls");
        assert_eq!(
            err,
            StallError {
                cycles: 50,
                limit: 50
            }
        );
        assert_eq!(s.cycles(), 50);
        assert!(err.to_string().contains("50"));
    }

    #[test]
    fn cycles_accumulate_across_drains() {
        let mut s = Scheduler::new();
        for round in 1..=3u64 {
            let mut net: CrossbarNetwork<TestPacket> = CrossbarNetwork::new(2, 2, 4);
            net.push(
                0,
                TestPacket {
                    dest: 0,
                    tag: round,
                },
            )
            .unwrap();
            s.drain(&mut net, |net, _| {
                net.pop(0);
            })
            .expect("drains");
        }
        assert!(s.cycles() >= 3);
    }

    #[test]
    fn vec_of_components_clocks_as_one() {
        let mut bank: Vec<Fifo<u32>> = vec![Fifo::new(2), Fifo::new(2)];
        assert!(bank.is_drained());
        bank[1].push(3).unwrap();
        assert!(!bank.is_drained());
        bank.tick(); // no-op for FIFOs, must not panic
        bank[1].pop();
        assert!(bank.is_drained());
    }

    #[test]
    fn run_for_counts_fixed_cycles() {
        let mut net: CrossbarNetwork<TestPacket> = CrossbarNetwork::new(2, 2, 4);
        let mut s = Scheduler::new();
        s.run_for(&mut net, 10, |_, _| {});
        assert_eq!(s.cycles(), 10);
    }

    #[test]
    fn stats_collection_is_uniform() {
        let mut net: CrossbarNetwork<TestPacket> = CrossbarNetwork::new(2, 2, 4);
        net.push(0, TestPacket { dest: 0, tag: 1 }).unwrap();
        let stats = ClockedComponent::network_stats(&net).expect("fabrics keep stats");
        assert_eq!(stats.accepted, 1);
        let fifo: Fifo<u32> = Fifo::new(1);
        assert!(ClockedComponent::network_stats(&fifo).is_none());
    }
}
