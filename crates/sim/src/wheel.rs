//! Indexed event-wheel (calendar-queue) window selection.
//!
//! [`Scheduler`](crate::Scheduler) fast-forward needs, at every step, the
//! minimum [`next_activity`](crate::ClockedComponent::next_activity)
//! window across a set of components. Folding the poll over every
//! component is O(components) per selection even when a single DRAM
//! channel is the only thing awake. [`EventWheel`] turns the selection
//! into an indexed lookup: each component (a *slot*) registers the
//! absolute cycle at which it next wants attention, wakes land in a ring
//! of buckets keyed by `wake mod horizon` with a bitmap over the buckets,
//! and the minimum is found by scanning occupied buckets circularly from
//! `now` — O(active slots), with quiescent slots costing nothing.
//!
//! # Registration contract
//!
//! The wheel stores one absolute wake per slot, computed from the slot's
//! activity window at registration time (`wake = now + window`; `None`
//! disarms the slot). Because windows count down by exactly one per
//! trivial cycle, an absolute wake stays valid across idle time with no
//! re-registration. The owner must uphold two rules (`docs/simulation.md`
//! spells them out):
//!
//! * **never stale-late** — any event that can make a slot's activity
//!   *earlier* than its registered wake (new input accepted, the slot
//!   actually stepping at its wake cycle) must [`EventWheel::mark_dirty`]
//!   the slot, or mark all due slots via [`EventWheel::dirty_due`] after
//!   advancing the clock;
//! * **stale-early is fine** — a slot may turn out to sleep *longer* than
//!   registered (e.g. a loaded channel issuing internally during a bulk
//!   skip). [`EventWheel::next_window`] revalidates every candidate
//!   against the live window function and re-registers it later before
//!   trusting it.
//!
//! Under those rules the returned window is exactly the poll minimum,
//! which the integration sites debug-assert against the legacy fold (the
//! debug-build oracle).

use std::fmt;

/// Absolute wake value meaning "unarmed / quiescent".
const UNARMED: u64 = u64::MAX;

/// Smallest supported bucket-ring span, in cycles.
pub const MIN_WHEEL_HORIZON: usize = 1;

/// Largest supported bucket-ring span, in cycles. Bounds the bitmap to a
/// few words; wakes beyond the ring spill to an overflow list, so a
/// small horizon is a performance knob, never a correctness one.
pub const MAX_WHEEL_HORIZON: usize = 4096;

/// Default bucket-ring span: generously past the longest DRAM access
/// class (a row conflict is ~42 cycles) and inter-chip flight latency,
/// so overflow spills are rare, while the bitmap stays at 16 words.
pub const DEFAULT_WHEEL_HORIZON: usize = 1024;

/// One registered wake: the slot it belongs to and the absolute cycle it
/// was registered for. An entry is live only while it matches the
/// authoritative per-slot wake; superseded entries are discarded lazily
/// when a scan visits them.
#[derive(Debug, Clone, Copy)]
struct Entry {
    slot: u32,
    wake: u64,
}

/// A calendar queue over a fixed set of slots (see the module docs).
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// Authoritative absolute wake per slot ([`UNARMED`] = quiescent).
    wakes: Vec<u64>,
    /// Ring of buckets spanning `[now, now + horizon)`, keyed by
    /// `wake & mask`.
    buckets: Vec<Vec<Entry>>,
    /// One bit per bucket: set iff the bucket holds entries (possibly
    /// stale; cleared when a scan empties the bucket).
    words: Vec<u64>,
    /// Entries registered for `wake >= now + horizon`; migrated into the
    /// ring as the clock advances.
    overflow: Vec<Entry>,
    /// Slots whose window must be recomputed at the next
    /// [`EventWheel::next_window`] (deduplicated via `dirty_flag`).
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
    now: u64,
    /// `horizon - 1`; the horizon is a power of two.
    mask: u64,
}

impl EventWheel {
    /// A wheel over `slots` components with a `horizon`-cycle bucket
    /// ring.
    ///
    /// # Panics
    ///
    /// Panics on an invalid shape; use [`EventWheel::try_new`] where the
    /// parameters are configuration-derived.
    pub fn new(slots: usize, horizon: usize) -> Self {
        // lint:allow(panic-freedom): documented panicking convenience; EventWheel::try_new is the fallible path
        EventWheel::try_new(slots, horizon).expect("invalid event-wheel shape")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns an actionable message if `slots` is zero or `horizon` is
    /// not a power of two in
    /// [[`MIN_WHEEL_HORIZON`], [`MAX_WHEEL_HORIZON`]].
    pub fn try_new(slots: usize, horizon: usize) -> Result<Self, String> {
        if slots == 0 {
            return Err("event wheel misconfigured: slot count is 0\n  \
                 the wheel indexes the activity of a fixed set of components, so it needs \
                 at least one slot\n  \
                 valid slot counts: 1 ..= u32::MAX"
                .to_string());
        }
        if slots > u32::MAX as usize {
            return Err(format!(
                "event wheel misconfigured: slot count {slots} exceeds u32::MAX\n  \
                 slots are indexed by u32 handles\n  \
                 valid slot counts: 1 ..= u32::MAX"
            ));
        }
        if !(MIN_WHEEL_HORIZON..=MAX_WHEEL_HORIZON).contains(&horizon) || !horizon.is_power_of_two()
        {
            return Err(format!(
                "event wheel misconfigured: horizon {horizon} is invalid\n  \
                 valid horizons: powers of two in [{MIN_WHEEL_HORIZON}, {MAX_WHEEL_HORIZON}] \
                 (e.g. 256, 1024, 4096)\n  \
                 the horizon is the bucket ring's span in cycles; wakes beyond it spill to an \
                 overflow list, so a small horizon is slow, not wrong"
            ));
        }
        // lint:allow-item(hot-path-alloc): construction-time: ring buckets, occupancy words, and dirty tracking are allocated once per wheel
        Ok(EventWheel {
            wakes: vec![UNARMED; slots],
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            words: vec![0u64; horizon.div_ceil(64)],
            overflow: Vec::new(),
            dirty: Vec::new(),
            dirty_flag: vec![false; slots],
            now: 0,
            mask: (horizon - 1) as u64,
        })
    }

    /// Number of slots the wheel indexes.
    pub fn slots(&self) -> usize {
        self.wakes.len()
    }

    /// The bucket ring's span in cycles.
    pub fn horizon(&self) -> usize {
        self.buckets.len()
    }

    /// The wheel's current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether `slot` holds a registered wake (i.e. was not quiescent at
    /// its last registration).
    #[inline]
    pub fn is_armed(&self, slot: usize) -> bool {
        self.wakes[slot] != UNARMED
    }

    /// Queues `slot` for re-registration at the next
    /// [`EventWheel::next_window`]. Idempotent between flushes.
    #[inline]
    pub fn mark_dirty(&mut self, slot: usize) {
        if !self.dirty_flag[slot] {
            self.dirty_flag[slot] = true;
            self.dirty.push(slot as u32);
        }
    }

    /// Queues every slot for re-registration (start of a drain, after
    /// bulk external mutation).
    pub fn mark_all_dirty(&mut self) {
        for slot in 0..self.wakes.len() {
            self.mark_dirty(slot);
        }
    }

    /// Queues every armed slot whose wake is due (`wake <= now`) for
    /// re-registration. Owners call this after each real tick: a slot
    /// that reached its wake cycle has just acted, so its old wake says
    /// nothing about its future.
    pub fn dirty_due(&mut self) {
        for slot in 0..self.wakes.len() {
            let wake = self.wakes[slot];
            if wake != UNARMED && wake <= self.now {
                self.mark_dirty(slot);
            }
        }
    }

    /// Advances the wheel's clock by `cycles` (a tick passes 1, a bulk
    /// skip passes the window), migrating overflow wakes that the ring
    /// now spans.
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
        if self.overflow.is_empty() {
            return;
        }
        let horizon = self.buckets.len() as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            let e = self.overflow[i];
            if self.wakes[e.slot as usize] != e.wake {
                self.overflow.swap_remove(i);
                continue;
            }
            if e.wake.saturating_sub(self.now) < horizon {
                self.overflow.swap_remove(i);
                self.insert_bucket(e);
                continue;
            }
            i += 1;
        }
    }

    /// Registers `slot` at `window` cycles from now (`None` disarms),
    /// replacing any previous registration. [`EventWheel::next_window`]
    /// does this automatically for dirty slots; the direct form exists
    /// for benches and tests.
    pub fn register(&mut self, slot: usize, window: Option<u64>) {
        let new_wake = match window {
            None => UNARMED,
            // A window so large that `now + window` saturates is pinned
            // just below the unarmed sentinel; it stays in overflow.
            Some(w) => self.now.saturating_add(w).min(UNARMED - 1),
        };
        if new_wake == self.wakes[slot] {
            return; // the live entry for this wake is already placed
        }
        self.wakes[slot] = new_wake;
        if new_wake != UNARMED {
            self.insert(Entry {
                slot: slot as u32,
                wake: new_wake,
            });
        }
    }

    /// Re-registers dirty slots via `window`, then returns the minimum
    /// window across all armed slots — exactly the value the legacy
    /// `next_activity` poll would fold, found by a circular bitmap scan
    /// from `now` with per-candidate revalidation (module docs).
    ///
    /// `window(slot)` must return the slot's live activity window
    /// (`None` = quiescent); it is called for every dirty slot and for
    /// every candidate the scan visits, so it can be invoked more than
    /// once per slot per call.
    pub fn next_window<F>(&mut self, mut window: F) -> Option<u64>
    where
        F: FnMut(usize) -> Option<u64>,
    {
        // Flush re-registrations first: a dirty slot's stored wake is
        // meaningless until recomputed.
        while let Some(slot) = self.dirty.pop() {
            self.dirty_flag[slot as usize] = false;
            self.register(slot as usize, window(slot as usize));
        }

        let horizon = self.buckets.len();
        let start = (self.now & self.mask) as usize;
        let mut off = 0usize;
        while off < horizon {
            let pos = (start + off) & self.mask as usize;
            if !bit(&self.words, pos) {
                // Jump to the next occupied bucket.
                match next_set_bit_circular(&self.words, pos) {
                    None => break,
                    Some(p) => {
                        let noff = (p + horizon - start) & self.mask as usize;
                        if noff <= off {
                            break; // wrapped past `start`: ring exhausted
                        }
                        off = noff;
                        continue;
                    }
                }
            }
            // Every live entry in this bucket shares one wake: the ring
            // spans `[now, now + horizon)`, so the bucket index pins it.
            let expected = self.now + off as u64;
            // Every path below removes entry `i` or returns, so the
            // index never advances.
            let i = 0;
            while i < self.buckets[pos].len() {
                let e = self.buckets[pos][i];
                if self.wakes[e.slot as usize] != e.wake {
                    self.buckets[pos].swap_remove(i); // superseded
                    continue;
                }
                if e.wake != expected {
                    // A live wake in the past: the owner let a due slot
                    // act without a dirty mark. Recover by recomputing,
                    // but the scan order is no longer trustworthy.
                    debug_assert!(
                        false,
                        "event wheel visited a past-due wake (slot {}, wake {}, now {}): \
                         a due slot must be marked dirty before its next selection",
                        e.slot, e.wake, self.now
                    );
                    self.buckets[pos].swap_remove(i);
                    self.wakes[e.slot as usize] = UNARMED;
                    self.register(e.slot as usize, window(e.slot as usize));
                    continue;
                }
                // Candidate minimum: revalidate against the live window.
                match window(e.slot as usize) {
                    None => {
                        self.wakes[e.slot as usize] = UNARMED;
                        self.buckets[pos].swap_remove(i);
                    }
                    Some(w) => {
                        let new_wake = self.now.saturating_add(w).min(UNARMED - 1);
                        if new_wake == e.wake {
                            return Some(w);
                        }
                        // Stale-early: the slot slept longer than it
                        // registered (never shorter — that would need a
                        // dirty mark). Move it later and keep scanning.
                        debug_assert!(
                            new_wake > e.wake,
                            "activity moved earlier (slot {}, wake {} -> {}) without mark_dirty",
                            e.slot,
                            e.wake,
                            new_wake
                        );
                        self.wakes[e.slot as usize] = new_wake;
                        self.buckets[pos].swap_remove(i);
                        self.insert(Entry {
                            slot: e.slot,
                            wake: new_wake,
                        });
                        if new_wake < e.wake {
                            return Some(w); // defensive: see debug_assert
                        }
                    }
                }
            }
            debug_assert!(self.buckets[pos].is_empty());
            clear_bit(&mut self.words, pos);
            off += 1;
        }

        // The ring held nothing live: the minimum, if any, is in the
        // overflow (every overflow wake is >= now + horizon, beyond any
        // ring wake by construction).
        loop {
            let mut best: Option<(usize, u64)> = None;
            let mut i = 0;
            while i < self.overflow.len() {
                let e = self.overflow[i];
                if self.wakes[e.slot as usize] != e.wake {
                    self.overflow.swap_remove(i);
                    continue;
                }
                if best.is_none_or(|(_, w)| e.wake < w) {
                    best = Some((i, e.wake));
                }
                i += 1;
            }
            let (i, wake) = best?;
            let slot = self.overflow[i].slot as usize;
            match window(slot) {
                None => {
                    self.wakes[slot] = UNARMED;
                    self.overflow.swap_remove(i);
                }
                Some(w) => {
                    let new_wake = self.now.saturating_add(w).min(UNARMED - 1);
                    if new_wake == wake {
                        return Some(w);
                    }
                    debug_assert!(
                        new_wake > wake,
                        "activity moved earlier (slot {slot}, wake {wake} -> {new_wake}) \
                         without mark_dirty"
                    );
                    self.wakes[slot] = new_wake;
                    self.overflow.swap_remove(i);
                    self.insert(Entry {
                        slot: slot as u32,
                        wake: new_wake,
                    });
                    if new_wake < wake {
                        return Some(w); // defensive: see debug_assert
                    }
                }
            }
        }
    }

    /// Places a live entry into the ring or the overflow.
    fn insert(&mut self, e: Entry) {
        debug_assert_ne!(e.wake, UNARMED);
        debug_assert_eq!(self.wakes[e.slot as usize], e.wake);
        if e.wake.saturating_sub(self.now) < self.buckets.len() as u64 {
            self.insert_bucket(e);
        } else {
            self.overflow.push(e);
            if self.overflow.len() > self.wakes.len() {
                let wakes = &self.wakes;
                self.overflow.retain(|e| wakes[e.slot as usize] == e.wake);
            }
        }
    }

    fn insert_bucket(&mut self, e: Entry) {
        let b = (e.wake & self.mask) as usize;
        self.buckets[b].push(e);
        set_bit(&mut self.words, b);
        // Lazy deletion can pile superseded entries up; compact a bucket
        // that outgrows the slot count (it can hold at most one live
        // entry per slot).
        if self.buckets[b].len() > self.wakes.len() {
            let wakes = &self.wakes;
            self.buckets[b].retain(|e| wakes[e.slot as usize] == e.wake);
        }
    }
}

impl fmt::Display for EventWheel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let armed = self.wakes.iter().filter(|&&w| w != UNARMED).count();
        write!(
            f,
            "EventWheel {{ slots: {}, horizon: {}, now: {}, armed: {} }}",
            self.slots(),
            self.horizon(),
            self.now,
            armed
        )
    }
}

#[inline]
fn bit(words: &[u64], pos: usize) -> bool {
    (words[pos / 64] >> (pos % 64)) & 1 == 1
}

#[inline]
fn set_bit(words: &mut [u64], pos: usize) {
    words[pos / 64] |= 1u64 << (pos % 64);
}

#[inline]
fn clear_bit(words: &mut [u64], pos: usize) {
    words[pos / 64] &= !(1u64 << (pos % 64));
}

/// First set bit in circular order starting at `start` (inclusive), or
/// `None` if no bit is set.
fn next_set_bit_circular(words: &[u64], start: usize) -> Option<usize> {
    let nwords = words.len();
    let wi = start / 64;
    let shift = start % 64;
    let high = words[wi] & (!0u64 << shift);
    if high != 0 {
        return Some(wi * 64 + high.trailing_zeros() as usize);
    }
    for step in 1..nwords {
        let i = (wi + step) % nwords;
        if words[i] != 0 {
            return Some(i * 64 + words[i].trailing_zeros() as usize);
        }
    }
    let low = words[wi] & !(!0u64 << shift);
    if low != 0 {
        return Some(wi * 64 + low.trailing_zeros() as usize);
    }
    None
}

/// The wheel's ring, overflow list, and dirty set are all rebuildable
/// caches over the per-slot wake registry, and the registry itself is
/// re-derived by the owner's window functions once every slot is dirty.
/// A snapshot therefore records only the clock (plus the shape, for
/// verification); restore rebuilds a fresh wheel at the saved `now` with
/// every slot marked dirty, exactly the recipe
/// [`crate::DramSystem::set_wheel_horizon`] already uses to swap wheels
/// mid-run.
impl crate::snapshot::Snapshot for EventWheel {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.tag(b"WHEL");
        w.usize(self.slots());
        w.usize(self.horizon());
        w.u64(self.now());
    }

    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        r.expect_tag(b"WHEL")?;
        let slots = r.usize()?;
        let horizon = r.usize()?;
        let now = r.u64()?;
        if slots != self.slots() || horizon != self.horizon() {
            return Err(crate::snapshot::SnapError::new(format!(
                "event wheel shape mismatch: snapshot {slots} slots / horizon {horizon}, \
                 live {} / {}",
                self.slots(),
                self.horizon()
            )));
        }
        let mut fresh =
            EventWheel::try_new(slots, horizon).map_err(crate::snapshot::SnapError::new)?;
        fresh.advance(now);
        fresh.mark_all_dirty();
        *self = fresh;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: windows per slot, polled naively.
    fn poll_min(windows: &[Option<u64>]) -> Option<u64> {
        windows
            .iter()
            .copied()
            .fold(None, crate::clock::min_activity)
    }

    #[test]
    fn rejects_invalid_shapes_with_actionable_messages() {
        let err = EventWheel::try_new(0, 64).expect_err("zero slots");
        assert!(err.contains("slot count is 0"), "{err}");
        assert!(err.contains("valid slot counts"), "{err}");
        for horizon in [0usize, 3, 48, 8192] {
            let err = EventWheel::try_new(4, horizon).expect_err("bad horizon");
            assert!(
                err.contains(&format!("horizon {horizon} is invalid")),
                "{err}"
            );
            assert!(err.contains("powers of two"), "{err}");
        }
        assert!(EventWheel::try_new(1, 1).is_ok());
        assert!(EventWheel::try_new(7, 4096).is_ok());
    }

    #[test]
    fn empty_wheel_is_quiescent() {
        let mut wheel = EventWheel::new(4, 16);
        assert_eq!(wheel.next_window(|_| unreachable!("nothing dirty")), None);
        wheel.advance(100);
        assert_eq!(wheel.next_window(|_| unreachable!()), None);
    }

    #[test]
    fn selects_the_minimum_across_slots() {
        let mut wheel = EventWheel::new(4, 16);
        let windows = [Some(7), None, Some(3), Some(12)];
        wheel.mark_all_dirty();
        assert_eq!(wheel.next_window(|s| windows[s]), Some(3));
        assert!(wheel.is_armed(0));
        assert!(!wheel.is_armed(1));
    }

    #[test]
    fn windows_decay_with_the_clock_without_re_registration() {
        let mut wheel = EventWheel::new(3, 16);
        let windows = [Some(9), Some(4), None];
        wheel.mark_all_dirty();
        assert_eq!(wheel.next_window(|s| windows[s]), Some(4));
        wheel.advance(3);
        // wakes are absolute: windows shrank by 3 with no new calls
        let decayed = [Some(6), Some(1), None];
        assert_eq!(wheel.next_window(|s| decayed[s]), Some(1));
        wheel.advance(1);
        let due = [Some(5), Some(0), None];
        assert_eq!(wheel.next_window(|s| due[s]), Some(0));
    }

    #[test]
    fn due_slot_is_recomputed_after_dirty_due() {
        let mut wheel = EventWheel::new(2, 8);
        wheel.mark_all_dirty();
        assert_eq!(wheel.next_window(|s| [Some(0), Some(5)][s]), Some(0));
        // slot 0 acts, the clock ticks, and its next wake is 3 away
        wheel.advance(1);
        wheel.dirty_due();
        assert_eq!(wheel.next_window(|s| [Some(3), Some(4)][s]), Some(3));
    }

    #[test]
    fn stale_early_candidate_is_revalidated_and_moved_later() {
        let mut wheel = EventWheel::new(2, 32);
        wheel.mark_all_dirty();
        assert_eq!(wheel.next_window(|s| [Some(2), Some(10)][s]), Some(2));
        wheel.advance(2);
        // Slot 0 turned out to sleep longer (a loaded skip issued
        // internally): its live window at its registered wake is 6, not
        // 0. No dirty mark — the scan must revalidate and fall through
        // to... slot 0 again (6 < 8), at its corrected wake.
        let live = [Some(6), Some(8)];
        assert_eq!(wheel.next_window(|s| live[s]), Some(6));
        // and the correction stuck: advancing 6 makes it due
        wheel.advance(6);
        assert_eq!(wheel.next_window(|s| [Some(0), Some(2)][s]), Some(0));
    }

    #[test]
    fn quiescence_discovered_during_revalidation_disarms() {
        let mut wheel = EventWheel::new(2, 16);
        wheel.mark_all_dirty();
        assert_eq!(wheel.next_window(|s| [Some(1), None][s]), Some(1));
        wheel.advance(1);
        // slot 0 drained in the meantime; revalidation must disarm it
        assert_eq!(wheel.next_window(|_| None), None);
        assert!(!wheel.is_armed(0));
    }

    #[test]
    fn wakes_beyond_the_horizon_overflow_and_migrate_back() {
        let mut wheel = EventWheel::new(3, 8);
        wheel.mark_all_dirty();
        let windows = [Some(100), Some(20), None];
        assert_eq!(wheel.next_window(|s| windows[s]), Some(20));
        wheel.advance(20);
        wheel.dirty_due();
        // slot 1 acted and went quiescent; slot 0 is 80 out (overflow)
        assert_eq!(wheel.next_window(|s| [Some(80), None, None][s]), Some(80));
        wheel.advance(75);
        // now within the ring: the migrated entry must be found
        assert_eq!(wheel.next_window(|s| [Some(5), None, None][s]), Some(5));
        wheel.advance(5);
        assert_eq!(wheel.next_window(|s| [Some(0), None, None][s]), Some(0));
    }

    #[test]
    fn matches_the_poll_under_randomized_traffic() {
        // A self-contained model: each slot holds a deterministic list of
        // absolute event times; its window at `now` is the distance to
        // its next event. The wheel must equal the naive poll at every
        // step of a long advance schedule.
        let slots = 13usize;
        let mut rng = 0x9E3779B97F4A7C15u64;
        let mut step = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let events: Vec<Vec<u64>> = (0..slots)
            .map(|_| {
                let mut t = 0u64;
                let mut ev = Vec::new();
                for _ in 0..40 {
                    t += step() % 97 + 1;
                    ev.push(t);
                }
                ev
            })
            .collect();
        let window_at = |slot: usize, now: u64| -> Option<u64> {
            events[slot].iter().find(|&&t| t >= now).map(|&t| t - now)
        };

        let mut wheel = EventWheel::new(slots, 64);
        wheel.mark_all_dirty();
        let mut now = 0u64;
        loop {
            let expect = poll_min(&(0..slots).map(|s| window_at(s, now)).collect::<Vec<_>>());
            let got = wheel.next_window(|s| window_at(s, now));
            assert_eq!(got, expect, "at cycle {now}");
            match got {
                None => break,
                Some(w) => {
                    // advance to the event (or half-way, exercising the
                    // clamped-skip path where nothing comes due)
                    let jump = if step() % 3 == 0 && w > 1 {
                        w / 2
                    } else {
                        w.max(1)
                    };
                    now += jump;
                    wheel.advance(jump);
                    wheel.dirty_due();
                }
            }
        }
        assert_eq!(wheel.next_window(|_| None), None);
    }

    #[test]
    fn dense_wake_sets_share_buckets() {
        // More slots than horizon: many wakes collide per bucket.
        let slots = 200usize;
        let mut wheel = EventWheel::new(slots, 4);
        wheel.mark_all_dirty();
        assert_eq!(wheel.next_window(|s| Some((s % 4) as u64)), Some(0));
        wheel.advance(4);
        wheel.dirty_due();
        assert_eq!(wheel.next_window(|_| Some(2)), Some(2));
    }

    #[test]
    fn mark_dirty_is_idempotent_and_flushes_once() {
        let mut wheel = EventWheel::new(2, 8);
        wheel.mark_dirty(0);
        wheel.mark_dirty(0);
        wheel.mark_dirty(1);
        let mut calls = [0u32; 2];
        let got = wheel.next_window(|s| {
            calls[s] += 1;
            Some(5)
        });
        assert_eq!(got, Some(5));
        // one registration flush each; +1 revalidation for the candidate
        assert!(calls[0] + calls[1] <= 3, "{calls:?}");
    }

    #[test]
    fn register_replaces_previous_wake() {
        let mut wheel = EventWheel::new(1, 16);
        wheel.register(0, Some(10));
        wheel.register(0, Some(2));
        assert_eq!(wheel.next_window(|_| Some(2)), Some(2));
        wheel.register(0, None);
        assert_eq!(wheel.next_window(|_| None), None);
    }

    #[test]
    fn display_summarizes_shape() {
        let wheel = EventWheel::new(4, 16);
        let text = wheel.to_string();
        assert!(text.contains("slots: 4"), "{text}");
        assert!(text.contains("horizon: 16"), "{text}");
    }
}
