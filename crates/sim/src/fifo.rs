//! A bounded FIFO queue with explicit capacity.
//!
//! This is the basic storage element of every buffered datapath in the
//! reproduction: the 2W1R FIFOs inside MDP-network stages, crossbar input
//! queues, and processing-element input buffers are all [`Fifo`]s whose
//! per-cycle port discipline is enforced by the owning component.

use std::collections::VecDeque;

/// A bounded first-in-first-out queue.
///
/// # Example
///
/// ```
/// use higraph_sim::Fifo;
///
/// let mut f = Fifo::new(2);
/// assert!(f.push(1).is_ok());
/// assert!(f.push(2).is_ok());
/// assert_eq!(f.push(3), Err(3)); // full
/// assert_eq!(f.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates an empty FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-entry FIFO cannot pass data.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of items the FIFO can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO holds no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Number of free slots.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Enqueues `item`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (handing the item back) if the FIFO is full.
    #[inline]
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Dequeues the oldest item, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// The oldest item without dequeuing it.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable access to the oldest item (e.g. to shrink a partially
    /// forwarded range in place, as a skid buffer does).
    #[inline]
    pub fn peek_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates from oldest to newest without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert!(f.is_full());
        for i in 0..4 {
            assert_eq!(f.pop(), Some(i));
        }
        assert!(f.is_empty());
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn push_to_full_returns_item() {
        let mut f = Fifo::new(1);
        f.push("a").unwrap();
        assert_eq!(f.push("b"), Err("b"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = Fifo::new(2);
        f.push(7).unwrap();
        assert_eq!(f.peek(), Some(&7));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn free_tracks_capacity() {
        let mut f = Fifo::new(3);
        assert_eq!(f.free(), 3);
        f.push(0).unwrap();
        assert_eq!(f.free(), 2);
        f.clear();
        assert_eq!(f.free(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut f = Fifo::new(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        let v: Vec<_> = f.iter().copied().collect();
        assert_eq!(v, vec![1, 2]);
    }
}
