//! A bounded FIFO queue with explicit capacity.
//!
//! This is the basic storage element of every buffered datapath in the
//! reproduction: the 2W1R FIFOs inside MDP-network stages, crossbar input
//! queues, and processing-element input buffers are all [`Fifo`]s whose
//! per-cycle port discipline is enforced by the owning component.
//!
//! # Representation
//!
//! Storage is a fixed, power-of-two ring buffer allocated once at
//! construction: `push`/`pop` are an index mask and a length update, with
//! no reallocation, no branch on wrap-around arithmetic, and no pointer
//! indirection beyond the single backing slice. The queue's contents are
//! observable as at most two contiguous slices ([`Fifo::as_slices`]),
//! oldest first — the layout the per-cycle hot paths iterate. See
//! `docs/performance.md` for the conventions this supports.

use std::fmt;
use std::mem::MaybeUninit;

/// A bounded first-in-first-out queue over a fixed ring buffer.
///
/// # Example
///
/// ```
/// use higraph_sim::Fifo;
///
/// let mut f = Fifo::new(2);
/// assert!(f.push(1).is_ok());
/// assert!(f.push(2).is_ok());
/// assert_eq!(f.push(3), Err(3)); // full
/// assert_eq!(f.pop(), Some(1));
/// ```
pub struct Fifo<T> {
    /// Ring storage; `buf.len()` is `capacity.next_power_of_two()`.
    /// Slots `(head + i) & mask` for `i < len` are initialized.
    buf: Box<[MaybeUninit<T>]>,
    /// `buf.len() - 1`: index arithmetic is a single AND.
    mask: usize,
    /// Physical index of the oldest item.
    head: usize,
    /// Number of queued items.
    len: usize,
    /// Logical capacity (what the caller asked for; `<= buf.len()`).
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates an empty FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-entry FIFO cannot pass data.
    /// Configuration-derived capacities are validated before any FIFO is
    /// built (see `AcceleratorConfig::validate` in `higraph-accel`);
    /// [`Fifo::try_new`] is the fallible constructor for dynamic sizes.
    pub fn new(capacity: usize) -> Self {
        // lint:allow(panic-freedom): documented panicking convenience; Fifo::try_new is the fallible path
        Fifo::try_new(capacity).expect("FIFO capacity must be positive")
    }

    /// Fallible constructor: creates an empty FIFO holding at most
    /// `capacity` items.
    ///
    /// # Errors
    ///
    /// Returns a message if `capacity` is zero.
    pub fn try_new(capacity: usize) -> Result<Self, String> {
        if capacity == 0 {
            return Err("FIFO capacity must be positive".to_string());
        }
        let physical = capacity.next_power_of_two();
        // lint:allow(hot-path-alloc): construction-time: the ring buffer is allocated once and reused for the FIFO's lifetime
        let buf: Box<[MaybeUninit<T>]> = (0..physical).map(|_| MaybeUninit::uninit()).collect();
        Ok(Fifo {
            mask: physical - 1,
            buf,
            head: 0,
            len: 0,
            capacity,
        })
    }

    /// Maximum number of items the FIFO can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the FIFO holds no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the FIFO is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Number of free slots.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.len
    }

    /// Enqueues `item`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (handing the item back) if the FIFO is full.
    #[inline]
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            Err(item)
        } else {
            self.buf[(self.head + self.len) & self.mask].write(item);
            self.len += 1;
            Ok(())
        }
    }

    /// Dequeues the oldest item, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        // SAFETY: `len > 0`, so the slot at `head` holds an initialized
        // item; the read un-initializes it and the index update takes it
        // out of the live window, so it is never read or dropped again.
        let item = unsafe { self.buf[self.head].assume_init_read() };
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(item)
    }

    /// The oldest item without dequeuing it.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            // SAFETY: `len > 0` ⇒ the head slot is initialized.
            Some(unsafe { self.buf[self.head].assume_init_ref() })
        }
    }

    /// Mutable access to the oldest item (e.g. to shrink a partially
    /// forwarded range in place, as a skid buffer does).
    #[inline]
    pub fn peek_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 {
            None
        } else {
            // SAFETY: `len > 0` ⇒ the head slot is initialized.
            Some(unsafe { self.buf[self.head].assume_init_mut() })
        }
    }

    /// Removes (and drops) all items.
    pub fn clear(&mut self) {
        while self.pop().is_some() {}
    }

    /// The queued items as two contiguous slices, `(older, newer)`: the
    /// run from the head to the physical end of the ring, then the
    /// wrapped-around run from the start. Either may be empty; chained
    /// they are the queue oldest-first.
    pub fn as_slices(&self) -> (&[T], &[T]) {
        let first_len = self.len.min(self.buf.len() - self.head);
        // SAFETY: the live window `(head + i) & mask, i < len` holds
        // initialized items; `first_len` does not run past the physical
        // end, and the wrapped part starts at physical index 0.
        // `MaybeUninit<T>` is layout-compatible with `T`.
        unsafe {
            let base = self.buf.as_ptr();
            let first = std::slice::from_raw_parts(base.add(self.head).cast::<T>(), first_len);
            let second = std::slice::from_raw_parts(base.cast::<T>(), self.len - first_len);
            (first, second)
        }
    }

    /// Iterates from oldest to newest without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (a, b) = self.as_slices();
        a.iter().chain(b.iter())
    }
}

impl<T> Drop for Fifo<T> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<T>() {
            self.clear();
        }
    }
}

impl<T: Clone> Clone for Fifo<T> {
    fn clone(&self) -> Self {
        // lint:allow(panic-freedom): infallible: self.capacity was validated by try_new when self was built
        let mut cloned = Fifo::try_new(self.capacity).expect("capacity validated at construction");
        for item in self.iter() {
            let pushed = cloned.push(item.clone());
            debug_assert!(pushed.is_ok());
        }
        cloned
    }
}

impl<T: fmt::Debug> fmt::Debug for Fifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fifo")
            .field("capacity", &self.capacity)
            .field("items", &DebugItems(self))
            .finish()
    }
}

/// Renders a FIFO's queue oldest-first for [`fmt::Debug`].
struct DebugItems<'a, T>(&'a Fifo<T>);

impl<T: fmt::Debug> fmt::Debug for DebugItems<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.0.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert!(f.is_full());
        for i in 0..4 {
            assert_eq!(f.pop(), Some(i));
        }
        assert!(f.is_empty());
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn push_to_full_returns_item() {
        let mut f = Fifo::new(1);
        f.push("a").unwrap();
        assert_eq!(f.push("b"), Err("b"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = Fifo::new(2);
        f.push(7).unwrap();
        assert_eq!(f.peek(), Some(&7));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn free_tracks_capacity() {
        let mut f = Fifo::new(3);
        assert_eq!(f.free(), 3);
        f.push(0).unwrap();
        assert_eq!(f.free(), 2);
        f.clear();
        assert_eq!(f.free(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn try_new_reports_zero_capacity() {
        assert!(Fifo::<u8>::try_new(0).is_err());
        assert!(Fifo::<u8>::try_new(1).is_ok());
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut f = Fifo::new(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        let v: Vec<_> = f.iter().copied().collect();
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn wrap_around_preserves_order_at_non_power_of_two_capacity() {
        // capacity 3 rides in a 4-slot ring: exercise many wrap-arounds
        let mut f = Fifo::new(3);
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        for round in 0..50 {
            while f.push(next_in).is_ok() {
                next_in += 1;
            }
            assert!(f.is_full());
            let drain = if round % 2 == 0 { 1 } else { 2 };
            for _ in 0..drain {
                assert_eq!(f.pop(), Some(next_out));
                next_out += 1;
            }
        }
        while let Some(got) = f.pop() {
            assert_eq!(got, next_out);
            next_out += 1;
        }
        assert_eq!(next_in, next_out);
    }

    #[test]
    fn as_slices_covers_the_wrapped_queue() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        f.pop();
        f.pop();
        f.push(4).unwrap();
        f.push(5).unwrap(); // head = 2, wrapped
        let (a, b) = f.as_slices();
        assert_eq!(a, &[2, 3]);
        assert_eq!(b, &[4, 5]);
        let all: Vec<_> = f.iter().copied().collect();
        assert_eq!(all, vec![2, 3, 4, 5]);
    }

    #[test]
    fn peek_mut_edits_head_in_place() {
        let mut f = Fifo::new(2);
        f.push(10).unwrap();
        *f.peek_mut().unwrap() = 11;
        assert_eq!(f.pop(), Some(11));
    }

    #[test]
    fn clone_preserves_contents_and_capacity() {
        let mut f = Fifo::new(3);
        f.push("x".to_string()).unwrap();
        f.pop();
        f.push("y".to_string()).unwrap();
        f.push("z".to_string()).unwrap();
        let c = f.clone();
        assert_eq!(c.capacity(), 3);
        assert_eq!(c.iter().cloned().collect::<Vec<_>>(), ["y", "z"]);
    }

    #[test]
    fn drop_releases_owned_items() {
        use std::rc::Rc;
        let tracker = Rc::new(());
        {
            let mut f = Fifo::new(4);
            for _ in 0..3 {
                f.push(Rc::clone(&tracker)).unwrap();
            }
            f.pop();
            assert_eq!(Rc::strong_count(&tracker), 3);
        }
        assert_eq!(Rc::strong_count(&tracker), 1);
    }

    #[test]
    fn debug_formats_without_exposing_uninit_slots() {
        let mut f = Fifo::new(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        let text = format!("{f:?}");
        assert!(text.contains('2'), "{text}");
        assert!(!text.contains('1'), "{text}");
    }
}
