//! Cycle-exact state serialization (`docs/robustness.md`).
//!
//! Every stateful [`crate::ClockedComponent`] implements [`Snapshot`]:
//! a dependency-free flat-binary encoding with a versioned, checksummed
//! header, so an engine can persist its complete microarchitectural
//! state at a committed cycle boundary and later restore it into a
//! bit-identical continuation — same cycles, same metrics, on any host.
//!
//! # Wire format
//!
//! A snapshot is `header || payload`:
//!
//! ```text
//! magic    b"HGSN"            4 bytes
//! version  u32 little-endian  4 bytes   (SNAPSHOT_VERSION)
//! length   u64 little-endian  8 bytes   (payload byte count)
//! checksum u64 little-endian  8 bytes   (FNV-1a over the payload)
//! payload  …                  length bytes
//! ```
//!
//! The payload is a concatenation of little-endian scalars framed by
//! four-byte ASCII tags (`b"FIFO"`, `b"DRAM"`, …). Tags carry no length
//! information — they exist so a corrupted or version-skewed stream
//! fails with a precise [`SnapError`] at the first divergent component
//! instead of silently misinterpreting bytes.
//!
//! # Load-into contract
//!
//! [`Snapshot::load`] restores state *into an existing structure* that
//! was rebuilt from the same configuration and graph. Structural
//! parameters (capacities, channel counts, latencies) are not
//! serialized; loads verify the structure matches (e.g. a FIFO checks
//! its capacity) and reject mismatches. This keeps snapshots small and
//! makes a restore against the wrong configuration a diagnosable error,
//! never a corrupt continuation.

use crate::fifo::Fifo;
use std::collections::VecDeque;
use std::fmt;

/// Current snapshot wire-format version. Bump on any layout change;
/// loads reject other versions with a precise error.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Leading magic of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HGSN";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The FNV-1a digest snapshots use for payload checksums, exposed so
/// engine checkpoints can fingerprint their identity context (graph
/// hash, configuration encoding) with the same dependency-free hash.
pub fn content_checksum(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

/// A failed snapshot load: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// Human-readable description of the first divergence.
    pub context: String,
}

impl SnapError {
    /// A new error with the given context.
    pub fn new(context: impl Into<String>) -> Self {
        SnapError {
            context: context.into(),
        }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot error: {}", self.context)
    }
}

impl std::error::Error for SnapError {}

/// Serializes component state into the flat payload.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Bytes written so far (payload only, no header).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a four-byte ASCII framing tag.
    pub fn tag(&mut self, tag: &[u8; 4]) {
        self.buf.extend_from_slice(tag);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` (portable across host widths).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` by bit pattern (exact round trip, NaN included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes any [`SnapValue`].
    pub fn value<T: SnapValue>(&mut self, v: &T) {
        v.save_value(self);
    }

    /// Writes a length-prefixed sequence of [`SnapValue`]s.
    pub fn seq<'a, T: SnapValue + 'a>(&mut self, items: impl ExactSizeIterator<Item = &'a T>) {
        self.u64(items.len() as u64);
        for item in items {
            item.save_value(self);
        }
    }

    /// Seals the payload into a full snapshot (header + payload).
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + 24);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.buf).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out
    }
}

/// Deserializes a snapshot payload, verifying tags and bounds.
#[derive(Debug)]
pub struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Copies the first `N` bytes of `bytes` into a fixed array without any
/// panicking length assertion: every caller passes a slice whose length
/// was already checked (`take(N)` or the 24-byte header bound), and a
/// shorter slice — impossible by construction — would zero-fill rather
/// than abort, keeping the decode path panic-free on any input.
fn array_of<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    for (dst, src) in out.iter_mut().zip(bytes) {
        *dst = *src;
    }
    out
}

impl<'a> SnapReader<'a> {
    /// Opens a full snapshot: verifies magic, version, length, and the
    /// payload checksum, then positions the reader at the payload start.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] naming the first header field that fails
    /// verification.
    pub fn open(snapshot: &'a [u8]) -> Result<Self, SnapError> {
        if snapshot.len() < 24 {
            return Err(SnapError::new(format!(
                "truncated header: {} bytes, need 24",
                snapshot.len()
            )));
        }
        if snapshot[..4] != SNAPSHOT_MAGIC {
            return Err(SnapError::new("bad magic (not an HGSN snapshot)"));
        }
        let version = u32::from_le_bytes(array_of(&snapshot[4..8]));
        if version != SNAPSHOT_VERSION {
            return Err(SnapError::new(format!(
                "version {version} unsupported (this build reads {SNAPSHOT_VERSION})"
            )));
        }
        let length = u64::from_le_bytes(array_of(&snapshot[8..16])) as usize;
        let checksum = u64::from_le_bytes(array_of(&snapshot[16..24]));
        let payload = &snapshot[24..];
        if payload.len() != length {
            return Err(SnapError::new(format!(
                "payload length {} does not match header {length}",
                payload.len()
            )));
        }
        if fnv1a(payload) != checksum {
            return Err(SnapError::new(
                "payload checksum mismatch (corrupt snapshot)",
            ));
        }
        Ok(SnapReader {
            bytes: payload,
            pos: 0,
        })
    }

    /// Whether every payload byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Requires the payload to be fully consumed (a trailing-bytes check
    /// for top-level loads).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when bytes remain.
    pub fn expect_exhausted(&self) -> Result<(), SnapError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(SnapError::new(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapError::new(format!(
                "payload underrun at byte {} (wanted {n} more)",
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes and verifies a four-byte framing tag.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on a tag mismatch (component skew).
    pub fn expect_tag(&mut self, tag: &[u8; 4]) -> Result<(), SnapError> {
        let at = self.pos;
        let got = self.take(4)?;
        if got != tag {
            return Err(SnapError::new(format!(
                "expected tag {:?} at byte {at}, found {:?}",
                String::from_utf8_lossy(tag),
                String::from_utf8_lossy(got)
            )));
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on payload underrun.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on payload underrun.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(array_of(self.take(4)?)))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on payload underrun.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(array_of(self.take(8)?)))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on payload underrun.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(array_of(self.take(8)?)))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values beyond the
    /// host's address width.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on underrun or overflow.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::new(format!("usize overflow: {v}")))
    }

    /// Reads an `f64` by bit pattern.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on payload underrun.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting bytes other than 0/1.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on underrun or a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::new(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads any [`SnapValue`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on underrun or malformed encoding.
    pub fn value<T: SnapValue>(&mut self) -> Result<T, SnapError> {
        T::load_value(self)
    }

    /// Reads a length-prefixed sequence written by [`SnapWriter::seq`],
    /// bounded by `max` elements so corrupt lengths fail fast instead of
    /// attempting a huge allocation.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on underrun, malformed elements, or a
    /// length beyond `max`.
    pub fn seq<T: SnapValue>(&mut self, max: usize) -> Result<Vec<T>, SnapError> {
        let len = self.usize()?;
        if len > max {
            return Err(SnapError::new(format!(
                "sequence length {len} exceeds bound {max}"
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::load_value(self)?);
        }
        Ok(out)
    }
}

/// A plain-old-data value with an exact binary encoding — the element
/// type of serialized queues, arenas, and in-flight buffers.
pub trait SnapValue: Copy {
    /// Appends this value's encoding to the writer.
    fn save_value(&self, w: &mut SnapWriter);
    /// Decodes one value.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on underrun or malformed bytes.
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl SnapValue for u8 {
    fn save_value(&self, w: &mut SnapWriter) {
        w.u8(*self);
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u8()
    }
}

impl SnapValue for u32 {
    fn save_value(&self, w: &mut SnapWriter) {
        w.u32(*self);
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u32()
    }
}

impl SnapValue for u64 {
    fn save_value(&self, w: &mut SnapWriter) {
        w.u64(*self);
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u64()
    }
}

impl SnapValue for i64 {
    fn save_value(&self, w: &mut SnapWriter) {
        w.i64(*self);
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.i64()
    }
}

impl SnapValue for usize {
    fn save_value(&self, w: &mut SnapWriter) {
        w.usize(*self);
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.usize()
    }
}

impl SnapValue for f64 {
    fn save_value(&self, w: &mut SnapWriter) {
        w.f64(*self);
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.f64()
    }
}

impl SnapValue for bool {
    fn save_value(&self, w: &mut SnapWriter) {
        w.bool(*self);
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.bool()
    }
}

impl<T: SnapValue> SnapValue for Option<T> {
    fn save_value(&self, w: &mut SnapWriter) {
        match self {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                v.save_value(w);
            }
        }
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        if r.bool()? {
            Ok(Some(T::load_value(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: SnapValue, B: SnapValue> SnapValue for (A, B) {
    fn save_value(&self, w: &mut SnapWriter) {
        self.0.save_value(w);
        self.1.save_value(w);
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load_value(r)?, B::load_value(r)?))
    }
}

impl<A: SnapValue, B: SnapValue, C: SnapValue> SnapValue for (A, B, C) {
    fn save_value(&self, w: &mut SnapWriter) {
        self.0.save_value(w);
        self.1.save_value(w);
        self.2.save_value(w);
    }
    fn load_value(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load_value(r)?, B::load_value(r)?, C::load_value(r)?))
    }
}

/// Component state with a cycle-exact binary encoding. `load` restores
/// into an existing, structurally matching instance (see the module
/// docs for the contract).
pub trait Snapshot {
    /// Appends this component's state to the payload.
    fn save(&self, w: &mut SnapWriter);

    /// Restores state from the payload into `self`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on structural mismatch, underrun, or a
    /// malformed encoding.
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// The bounded FIFO serializes its occupancy through the public API, so
/// the queue's audited `unsafe` interior stays untouched by snapshot
/// code (`higraph-lint` forbids `unsafe` in snapshot paths).
impl<T: SnapValue> Snapshot for Fifo<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.tag(b"FIFO");
        w.usize(self.capacity());
        w.seq(ExactLen(self.iter(), self.len()));
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(b"FIFO")?;
        let capacity = r.usize()?;
        if capacity != self.capacity() {
            return Err(SnapError::new(format!(
                "FIFO capacity mismatch: snapshot {capacity}, live {}",
                self.capacity()
            )));
        }
        let items: Vec<T> = r.seq(capacity)?;
        self.clear();
        for item in items {
            if self.push(item).is_err() {
                return Err(SnapError::new("FIFO overflow during restore"));
            }
        }
        Ok(())
    }
}

impl<T: SnapValue> Snapshot for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.tag(b"DEQE");
        w.seq(ExactLen(self.iter(), self.len()));
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(b"DEQE")?;
        let items: Vec<T> = r.seq(usize::MAX)?;
        self.clear();
        self.extend(items);
        Ok(())
    }
}

/// A `Vec` restores in place: lengths must match the live structure
/// (they are sized by configuration and graph shape, not by traffic).
impl<T: SnapValue> Snapshot for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.tag(b"VECT");
        w.seq(ExactLen(self.iter(), self.len()));
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(b"VECT")?;
        let items: Vec<T> = r.seq(usize::MAX)?;
        if items.len() != self.len() {
            return Err(SnapError::new(format!(
                "Vec length mismatch: snapshot {}, live {}",
                items.len(),
                self.len()
            )));
        }
        *self = items;
        Ok(())
    }
}

impl<C: Snapshot> Snapshot for [C] {
    fn save(&self, w: &mut SnapWriter) {
        for c in self {
            c.save(w);
        }
    }

    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for c in self {
            c.load(r)?;
        }
        Ok(())
    }
}

/// Adapter giving any iterator an exact length for [`SnapWriter::seq`].
struct ExactLen<I>(I, usize);

impl<I: Iterator> Iterator for ExactLen<I> {
    type Item = I::Item;
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.0.next();
        if item.is_some() {
            self.1 -= 1;
        }
        item
    }
}

impl<I: Iterator> ExactSizeIterator for ExactLen<I> {
    fn len(&self) -> usize {
        self.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip_and_corruption_detection() {
        let mut w = SnapWriter::new();
        w.tag(b"TEST");
        w.u64(42);
        w.f64(1.5);
        w.bool(true);
        let bytes = w.finish();

        let mut r = SnapReader::open(&bytes).expect("opens");
        r.expect_tag(b"TEST").expect("tag");
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert!(r.bool().unwrap());
        r.expect_exhausted().expect("fully consumed");

        // flip a payload byte: checksum must catch it
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 0x40;
        assert!(SnapReader::open(&corrupt)
            .unwrap_err()
            .context
            .contains("checksum"));

        // wrong magic
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(SnapReader::open(&bad)
            .unwrap_err()
            .context
            .contains("magic"));

        // future version
        let mut future = bytes.clone();
        future[4] = 99;
        assert!(SnapReader::open(&future)
            .unwrap_err()
            .context
            .contains("version"));

        // truncation
        assert!(SnapReader::open(&bytes[..10]).is_err());
        assert!(SnapReader::open(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn fifo_round_trips_contents_and_rejects_capacity_mismatch() {
        let mut fifo: Fifo<u64> = Fifo::new(8);
        fifo.push(3).unwrap();
        fifo.push(9).unwrap();
        fifo.pop();
        fifo.push(27).unwrap(); // wrapped occupancy: [9, 27]
        let mut w = SnapWriter::new();
        fifo.save(&mut w);
        let bytes = w.finish();

        let mut restored: Fifo<u64> = Fifo::new(8);
        restored.push(999).unwrap(); // stale state must be cleared
        let mut r = SnapReader::open(&bytes).unwrap();
        restored.load(&mut r).expect("loads");
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.pop(), Some(9));
        assert_eq!(restored.pop(), Some(27));

        let mut wrong: Fifo<u64> = Fifo::new(4);
        let mut r = SnapReader::open(&bytes).unwrap();
        assert!(wrong.load(&mut r).unwrap_err().context.contains("capacity"));
    }

    #[test]
    fn vecdeque_and_vec_round_trip() {
        let mut dq: VecDeque<(u64, u32)> = VecDeque::new();
        dq.push_back((7, 1));
        dq.push_back((8, 2));
        let v: Vec<u64> = vec![10, 20, 30];
        let mut w = SnapWriter::new();
        dq.save(&mut w);
        v.save(&mut w);
        let bytes = w.finish();

        let mut dq2: VecDeque<(u64, u32)> = VecDeque::from(vec![(0, 0)]);
        let mut v2: Vec<u64> = vec![0; 3];
        let mut r = SnapReader::open(&bytes).unwrap();
        dq2.load(&mut r).unwrap();
        v2.load(&mut r).unwrap();
        assert_eq!(dq2, dq);
        assert_eq!(v2, v);

        // a Vec with a different live length is a structural mismatch
        let mut wrong: Vec<u64> = vec![0; 2];
        let mut w = SnapWriter::new();
        v.save(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::open(&bytes).unwrap();
        assert!(wrong.load(&mut r).unwrap_err().context.contains("length"));
    }

    #[test]
    fn option_and_tuple_values_round_trip() {
        let mut w = SnapWriter::new();
        w.value(&Some((1u64, 2u64, 3u64)));
        w.value::<Option<u64>>(&None);
        let bytes = w.finish();
        let mut r = SnapReader::open(&bytes).unwrap();
        assert_eq!(
            r.value::<Option<(u64, u64, u64)>>().unwrap(),
            Some((1, 2, 3))
        );
        assert_eq!(r.value::<Option<u64>>().unwrap(), None);
    }

    #[test]
    fn tag_mismatch_names_both_tags() {
        let mut w = SnapWriter::new();
        w.tag(b"AAAA");
        let bytes = w.finish();
        let mut r = SnapReader::open(&bytes).unwrap();
        let err = r.expect_tag(b"BBBB").unwrap_err();
        assert!(err.context.contains("AAAA") && err.context.contains("BBBB"));
    }
}
