//! Input-queued crossbar with head-of-line blocking.
//!
//! This is the "arbitration solution like crossbar \[that\] is prevalently
//! used to deal with interaction of multiple channels" in previous
//! accelerators (Sec. 2.2). Each input has a FIFO; every cycle, each output
//! port independently grants one requesting input (round-robin) and moves
//! that input's head packet to the output register. Inputs that lose
//! arbitration stall — and because only the queue *head* participates,
//! packets behind a blocked head suffer head-of-line blocking even when
//! their own output is idle. This is the datapath-conflict inefficiency the
//! MDP-network removes.
//!
//! Design centralization — the frequency decline of large crossbars
//! (Fig. 4) — is modeled separately in `higraph-model`; at cycle level a
//! crossbar is conflict-limited, not frequency-limited.

use crate::clock::ClockedComponent;
use crate::fifo::Fifo;
use crate::network::{Network, Packet};
use crate::stats::NetworkStats;

/// An `n_in × n_out` input-queued crossbar.
///
/// # Example
///
/// ```
/// use higraph_sim::{ClockedComponent, CrossbarNetwork, Network};
///
/// #[derive(Debug)]
/// struct P(usize);
/// impl higraph_sim::Packet for P {
///     fn dest(&self) -> usize { self.0 }
/// }
///
/// let mut xbar = CrossbarNetwork::new(2, 2, 4);
/// xbar.push(0, P(1)).ok();
/// xbar.tick();
/// assert_eq!(xbar.pop(1).map(|p| p.0), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarNetwork<T> {
    input_queues: Vec<Fifo<T>>,
    /// One-entry output registers, as in a registered crossbar switch.
    outputs: Vec<Option<T>>,
    priority: usize,
    stats: NetworkStats,
    /// Per-output grant scratch, reused every tick (hot path: no
    /// per-cycle allocation).
    granted: Vec<Option<usize>>,
    /// Cached packet count (queues + output registers): `in_flight` is
    /// O(1) and an empty crossbar's tick early-outs. A tick conserves
    /// the count; push/pop maintain it.
    occupancy: usize,
}

impl<T: Packet> CrossbarNetwork<T> {
    /// Creates a crossbar with `n_in` input queues of `queue_capacity`
    /// entries each and `n_out` output registers.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the capacity is zero.
    pub fn new(n_in: usize, n_out: usize, queue_capacity: usize) -> Self {
        // lint:allow(panic-freedom): documented constructor panic; fabric shapes are validated before any crossbar is built
        assert!(
            n_in > 0 && n_out > 0,
            "crossbar dimensions must be positive"
        );
        CrossbarNetwork {
            input_queues: (0..n_in).map(|_| Fifo::new(queue_capacity)).collect(),
            outputs: (0..n_out).map(|_| None).collect(),
            priority: 0,
            stats: NetworkStats::new(),
            granted: vec![None; n_out],
            occupancy: 0,
        }
    }

    /// Capacity of each input queue.
    pub fn queue_capacity(&self) -> usize {
        self.input_queues[0].capacity()
    }

    /// Whether the next tick can grant nothing: every queue head's
    /// output register is still occupied (output draining is the
    /// owner's concern via [`Network::pop`]). The winner's identity
    /// depends on the rotating priority, but *whether* any grant happens
    /// does not, so a wedged tick is pure bookkeeping — committed in
    /// bulk by [`ClockedComponent::skip`]. Vacuously true when empty.
    pub fn is_wedged(&self) -> bool {
        self.input_queues
            .iter()
            .filter_map(Fifo::peek)
            .all(|head| self.outputs[head.dest()].is_some())
    }

    /// Bulk-commits `count` deterministic input rejections (a producer
    /// retrying a push against a full input queue every cycle).
    pub fn commit_rejected(&mut self, count: u64) {
        self.stats.rejected += count;
    }
}

impl<T: Packet> Network<T> for CrossbarNetwork<T> {
    fn num_inputs(&self) -> usize {
        self.input_queues.len()
    }

    fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    fn can_accept(&self, input: usize, _packet: &T) -> bool {
        !self.input_queues[input].is_full()
    }

    fn push(&mut self, input: usize, packet: T) -> Result<(), T> {
        debug_assert!(packet.dest() < self.outputs.len(), "dest out of range");
        match self.input_queues[input].push(packet) {
            Ok(()) => {
                self.stats.accepted += 1;
                self.occupancy += 1;
                Ok(())
            }
            Err(p) => {
                self.stats.rejected += 1;
                Err(p)
            }
        }
    }

    fn peek(&self, output: usize) -> Option<&T> {
        self.outputs[output].as_ref()
    }

    fn pop(&mut self, output: usize) -> Option<T> {
        let p = self.outputs[output].take();
        if p.is_some() {
            self.stats.delivered += 1;
            self.occupancy -= 1;
        }
        p
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

impl<T: Packet> ClockedComponent for CrossbarNetwork<T> {
    fn tick(&mut self) {
        self.stats.cycles += 1;
        let n_in = self.input_queues.len();
        if self.occupancy == 0 {
            // An empty crossbar's tick only rotates the priority.
            self.priority = (self.priority + 1) % n_in;
            return;
        }

        // Per-output round-robin arbitration over the input queue heads.
        // A single rotating priority pointer is shared across outputs,
        // matching a matrix arbiter with global rotation.
        self.granted.iter_mut().for_each(|g| *g = None);
        for off in 0..n_in {
            let i = (self.priority + off) % n_in;
            if let Some(head) = self.input_queues[i].peek() {
                let d = head.dest();
                if self.outputs[d].is_none() && self.granted[d].is_none() {
                    self.granted[d] = Some(i);
                }
            }
        }
        self.priority = (self.priority + 1) % n_in;

        // Count head-of-line blocking: a non-empty queue that was not
        // granted this cycle has its head (and everything behind it) stalled.
        for (i, q) in self.input_queues.iter().enumerate() {
            if !q.is_empty() && !self.granted.contains(&Some(i)) {
                self.stats.hol_blocked += 1;
            }
        }

        for (d, g) in self.granted.iter().enumerate() {
            if let Some(i) = g {
                let pkt = self.input_queues[*i]
                    .pop()
                    // lint:allow(panic-freedom): infallible: the arbiter only grants inputs whose queue reported a head this cycle
                    .expect("granted queue has a head");
                debug_assert_eq!(pkt.dest(), d);
                self.outputs[d] = Some(pkt);
            }
        }
    }

    fn in_flight(&self) -> usize {
        debug_assert_eq!(
            self.occupancy,
            self.input_queues.iter().map(Fifo::len).sum::<usize>()
                + self.outputs.iter().filter(|o| o.is_some()).count(),
            "cached occupancy out of sync"
        );
        self.occupancy
    }

    fn network_stats(&self) -> Option<NetworkStats> {
        Some(self.stats)
    }

    // `next_activity` keeps the default: only the owner (who knows the
    // consumer side) can prove a non-empty crossbar inert, via
    // `CrossbarNetwork::is_wedged`.

    /// An idle tick over an empty *or wedged* crossbar only advances the
    /// cycle counter, the rotating priority, and (when wedged) the
    /// per-queue HoL counts; commit all three in O(1).
    fn skip(&mut self, cycles: u64) {
        debug_assert!(
            cycles == 0 || self.is_wedged(),
            "skip() on a crossbar that can still grant"
        );
        self.stats.cycles += cycles;
        let blocked_queues = self.input_queues.iter().filter(|q| !q.is_empty()).count() as u64;
        self.stats.hol_blocked += cycles * blocked_queues;
        let n_in = self.input_queues.len();
        self.priority = (self.priority + (cycles % n_in as u64) as usize) % n_in;
    }
}

impl<T: crate::snapshot::SnapValue> crate::snapshot::Snapshot for CrossbarNetwork<T> {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.tag(b"XBAR");
        w.usize(self.input_queues.len());
        w.usize(self.outputs.len());
        w.usize(self.priority);
        self.stats.save(w);
        self.input_queues[..].save(w);
        self.outputs.save(w);
    }

    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        r.expect_tag(b"XBAR")?;
        let n_in = r.usize()?;
        let n_out = r.usize()?;
        if n_in != self.input_queues.len() || n_out != self.outputs.len() {
            return Err(crate::snapshot::SnapError::new(format!(
                "crossbar shape mismatch: snapshot {n_in}x{n_out}, live {}x{}",
                self.input_queues.len(),
                self.outputs.len()
            )));
        }
        let priority = r.usize()?;
        if priority >= n_in {
            return Err(crate::snapshot::SnapError::new(format!(
                "crossbar priority {priority} out of range for {n_in} inputs"
            )));
        }
        self.priority = priority;
        self.stats.load(r)?;
        self.input_queues[..].load(r)?;
        self.outputs.load(r)?;
        // Scratch and caches: grants are per-tick, occupancy is derived.
        self.granted.iter_mut().for_each(|g| *g = None);
        self.occupancy = self.input_queues.iter().map(Fifo::len).sum::<usize>()
            + self.outputs.iter().filter(|o| o.is_some()).count();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::testing::TestPacket;

    fn p(dest: usize, tag: u64) -> TestPacket {
        TestPacket { dest, tag }
    }

    #[test]
    fn routes_to_destination() {
        let mut x = CrossbarNetwork::new(2, 4, 4);
        x.push(0, p(3, 1)).unwrap();
        x.tick();
        assert_eq!(x.peek(3).map(|q| q.tag), Some(1));
        assert_eq!(x.pop(3).map(|q| q.tag), Some(1));
        assert!(x.is_empty());
    }

    #[test]
    fn conflicting_inputs_serialize() {
        let mut x = CrossbarNetwork::new(2, 2, 4);
        x.push(0, p(0, 10)).unwrap();
        x.push(1, p(0, 11)).unwrap();
        x.tick();
        // only one can win output 0
        let first = x.pop(0).unwrap();
        x.tick();
        let second = x.pop(0).unwrap();
        assert_ne!(first.tag, second.tag);
        assert!(x.stats().hol_blocked >= 1);
    }

    #[test]
    fn head_of_line_blocking_blocks_idle_output() {
        let mut x = CrossbarNetwork::new(2, 2, 4);
        // input 0: head wants output 0 (contended), second wants output 1 (idle)
        x.push(0, p(0, 1)).unwrap();
        x.push(0, p(1, 2)).unwrap();
        x.push(1, p(0, 3)).unwrap();
        x.tick();
        // whichever input lost output 0 is fully blocked; if input 0 lost,
        // output 1 stays empty despite a waiting packet for it.
        let out0 = x.pop(0).unwrap();
        if out0.tag == 3 {
            assert!(x.peek(1).is_none(), "HoL should block packet for output 1");
        }
    }

    #[test]
    fn output_register_backpressure() {
        let mut x = CrossbarNetwork::new(1, 1, 2);
        x.push(0, p(0, 1)).unwrap();
        x.tick();
        x.push(0, p(0, 2)).unwrap();
        x.tick(); // output still occupied by tag 1 → tag 2 must wait
        assert_eq!(x.peek(0).map(|q| q.tag), Some(1));
        x.pop(0);
        x.tick();
        assert_eq!(x.pop(0).map(|q| q.tag), Some(2));
    }

    #[test]
    fn full_queue_rejects_and_counts() {
        let mut x = CrossbarNetwork::new(1, 1, 1);
        x.push(0, p(0, 1)).unwrap();
        assert!(x.push(0, p(0, 2)).is_err());
        assert_eq!(x.stats().rejected, 1);
        assert_eq!(x.stats().accepted, 1);
    }

    #[test]
    fn fairness_under_saturation() {
        // two inputs permanently fighting for one output: both must make
        // progress (round-robin, no starvation).
        let mut x = CrossbarNetwork::new(2, 1, 2);
        let mut delivered = [0u32; 2];
        for t in 0..40 {
            let _ = x.push(0, p(0, 0));
            let _ = x.push(1, p(0, 1));
            x.tick();
            if let Some(q) = x.pop(0) {
                delivered[q.tag as usize] += 1;
            }
            let _ = t;
        }
        assert!(delivered[0] >= 15 && delivered[1] >= 15, "{delivered:?}");
    }
}
