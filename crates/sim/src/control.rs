//! Cooperative run control: cancellation, parking, and cycle budgets.
//!
//! A [`RunControl`] is a small bundle of atomic flags shared between a
//! running engine and whoever supervises it (the `higraph-serve`
//! watchdog, a signal handler, a test). The engine polls it at two
//! well-defined points:
//!
//! * **inside a drain** (every [`CANCEL_POLL_INTERVAL`] cycles):
//!   cancellation only. A cancelled drain aborts with
//!   [`DrainError::Interrupted`] and the partial iteration is
//!   discarded — cancel means "stop paying for this job", not "stop
//!   cleanly";
//! * **at committed iteration boundaries**: parking and cycle budgets.
//!   A boundary is the one place the pipeline is fully drained, so a
//!   park there checkpoints trivially consistent state
//!   (`docs/robustness.md`).
//!
//! Polling never changes simulated behaviour: a run that completes
//! produces bit-identical cycles and metrics whether or not a control
//! was attached.

use crate::clock::StallError;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// How often (in drained cycles) a controlled drain polls the cancel
/// flag. Coarse enough to stay off the per-cycle hot path, fine enough
/// that a runaway job dies within microseconds of host time.
pub const CANCEL_POLL_INTERVAL: u64 = 1024;

/// Shared cancellation/parking/budget flags for one controlled run.
///
/// Cheap to clone behind an `Arc`; all methods take `&self` and are
/// safe to call from any thread.
#[derive(Debug, Default)]
pub struct RunControl {
    cancel: AtomicBool,
    park: AtomicBool,
    /// Simulated-cycle budget; 0 = unlimited.
    budget_cycles: AtomicU64,
}

impl RunControl {
    /// A fresh control: not cancelled, not parked, unlimited budget.
    pub fn new() -> Self {
        RunControl::default()
    }

    /// Requests cancellation: the run aborts at its next poll and
    /// reports [`DrainError::Interrupted`] / a cancelled outcome.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    /// Requests a park: the run checkpoints and returns a parked
    /// outcome at its next committed iteration boundary.
    pub fn request_park(&self) {
        self.park.store(true, Ordering::Release);
    }

    /// Clears a pending park request (used when resuming a parked job).
    pub fn clear_park(&self) {
        self.park.store(false, Ordering::Release);
    }

    /// Whether a park has been requested.
    pub fn park_requested(&self) -> bool {
        self.park.load(Ordering::Acquire)
    }

    /// Sets the simulated-cycle budget (`None` = unlimited). A run
    /// whose aggregate cycles reach the budget parks at the next
    /// boundary, exactly like an explicit [`RunControl::request_park`].
    pub fn set_budget_cycles(&self, budget: Option<u64>) {
        self.budget_cycles
            .store(budget.unwrap_or(0), Ordering::Release);
    }

    /// The configured simulated-cycle budget, if any.
    pub fn budget_cycles(&self) -> Option<u64> {
        match self.budget_cycles.load(Ordering::Acquire) {
            0 => None,
            b => Some(b),
        }
    }

    /// Boundary decision: should a run that has spent `cycles` so far
    /// park here? True on an explicit park request or an exhausted
    /// cycle budget.
    pub fn should_park(&self, cycles: u64) -> bool {
        if self.park_requested() {
            return true;
        }
        match self.budget_cycles() {
            Some(budget) => cycles >= budget,
            None => false,
        }
    }
}

/// Why a controlled drain stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrainError {
    /// The component failed to drain within the stall guard.
    Stall(StallError),
    /// Cancellation was requested; `cycles` were already simulated in
    /// the aborted drain (they are discarded by the caller).
    Interrupted {
        /// Cycles spent before the cancel poll observed the request.
        cycles: u64,
    },
}

impl fmt::Display for DrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainError::Stall(e) => e.fmt(f),
            DrainError::Interrupted { cycles } => {
                write!(f, "drain interrupted by cancellation after {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for DrainError {}

impl From<StallError> for DrainError {
    fn from(e: StallError) -> Self {
        DrainError::Stall(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_toggle_independently() {
        let c = RunControl::new();
        assert!(!c.cancelled() && !c.park_requested());
        c.request_cancel();
        assert!(c.cancelled() && !c.park_requested());
        c.request_park();
        assert!(c.park_requested());
        c.clear_park();
        assert!(!c.park_requested() && c.cancelled());
    }

    #[test]
    fn budget_drives_should_park() {
        let c = RunControl::new();
        assert!(!c.should_park(u64::MAX), "unlimited by default");
        c.set_budget_cycles(Some(100));
        assert_eq!(c.budget_cycles(), Some(100));
        assert!(!c.should_park(99));
        assert!(c.should_park(100));
        c.set_budget_cycles(None);
        assert!(!c.should_park(u64::MAX));
        c.request_park();
        assert!(c.should_park(0), "explicit park wins regardless of budget");
    }

    #[test]
    fn drain_error_formats() {
        let s = DrainError::from(StallError {
            cycles: 5,
            limit: 5,
        });
        assert!(s.to_string().contains('5'));
        let i = DrainError::Interrupted { cycles: 7 };
        assert!(i.to_string().contains("cancellation"));
    }
}
