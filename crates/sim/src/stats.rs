//! Shared statistics counters.

/// Cumulative statistics of a propagation fabric.
///
/// The paper's key diagnostic — vPE starvation (Fig. 10b) — is derived from
/// these counters plus consumer-side accounting in `higraph-accel`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets accepted at the inputs.
    pub accepted: u64,
    /// Packets rejected at the inputs (producer had to stall).
    pub rejected: u64,
    /// Packets delivered from the outputs.
    pub delivered: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Head-of-line blocking events: a queue head could not advance while
    /// items behind it existed (crossbar) or its target stage FIFO was full
    /// (MDP-network).
    pub hol_blocked: u64,
}

impl NetworkStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        NetworkStats::default()
    }

    /// Fraction of input offers that were rejected.
    pub fn rejection_rate(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        }
    }

    /// Mean packets delivered per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64
        }
    }

    /// Folds `other` into `self` by summing every counter.
    ///
    /// Used to aggregate the same fabric across multiple chips (the
    /// sharded executor reports one merged counter set next to the
    /// per-chip ones). Note `cycles` sums too: the merged value is
    /// fabric-cycles across all instances, not wall-clock cycles.
    pub fn merge(&mut self, other: &NetworkStats) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.delivered += other.delivered;
        self.cycles += other.cycles;
        self.hol_blocked += other.hol_blocked;
    }
}

impl crate::snapshot::Snapshot for NetworkStats {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.tag(b"NSTA");
        w.u64(self.accepted);
        w.u64(self.rejected);
        w.u64(self.delivered);
        w.u64(self.cycles);
        w.u64(self.hol_blocked);
    }

    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        r.expect_tag(b"NSTA")?;
        self.accepted = r.u64()?;
        self.rejected = r.u64()?;
        self.delivered = r.u64()?;
        self.cycles = r.u64()?;
        self.hol_blocked = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = NetworkStats::new();
        assert_eq!(s.rejection_rate(), 0.0);
        assert_eq!(s.throughput(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = NetworkStats {
            accepted: 75,
            rejected: 25,
            delivered: 50,
            cycles: 100,
            hol_blocked: 3,
        };
        assert!((s.rejection_rate() - 0.25).abs() < 1e-12);
        assert!((s.throughput() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = NetworkStats {
            accepted: 1,
            rejected: 2,
            delivered: 3,
            cycles: 4,
            hol_blocked: 5,
        };
        let b = NetworkStats {
            accepted: 10,
            rejected: 20,
            delivered: 30,
            cycles: 40,
            hol_blocked: 50,
        };
        a.merge(&b);
        assert_eq!(
            a,
            NetworkStats {
                accepted: 11,
                rejected: 22,
                delivered: 33,
                cycles: 44,
                hol_blocked: 55,
            }
        );
        // merging into zeroed counters is the identity
        let mut zero = NetworkStats::new();
        zero.merge(&b);
        assert_eq!(zero, b);
    }
}
