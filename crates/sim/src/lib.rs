//! Cycle-level hardware simulation kernel.
//!
//! This crate holds the reusable microarchitectural building blocks the
//! HiGraph reproduction is assembled from:
//!
//! * [`fifo::Fifo`] — a bounded FIFO queue with explicit capacity,
//! * [`arbiter::RoundRobinArbiter`] / [`arbiter::OddEvenArbiter`] — the two
//!   arbitration policies used by the paper (crossbar arbitration and the
//!   front-end's alternating-priority odd-even arbiter),
//! * [`network::Network`] — the interface every propagation fabric
//!   implements (crossbar, MDP-network, naive nW1R FIFO),
//! * [`crossbar::CrossbarNetwork`] — the input-queued crossbar with
//!   head-of-line blocking that previous accelerators (Graphicionado,
//!   GraphDynS) use,
//! * [`memory::BankPorts`] — per-cycle bank-port accounting for the
//!   interleaved on-chip buffers, including the paper's
//!   "same target address" sharing rule,
//! * [`link::InterChipLink`] — the latency/bandwidth-modeled board-level
//!   interconnect coupling sharded multi-chip executions,
//! * [`dram::MemoryChannel`] / [`dram::DramSystem`] — the off-chip memory
//!   hierarchy: HBM-style channels with per-bank row buffers and
//!   tCAS-class timing,
//! * [`stats`] — shared counters,
//! * [`probe::Instrumented`] — an occupancy-tracing wrapper for any
//!   fabric (buffer-sizing studies),
//! * [`clock::ClockedComponent`] / [`clock::Scheduler`] — the cycle
//!   protocol as a trait plus the driver that clocks any set of
//!   components,
//! * [`wheel::EventWheel`] — the indexed calendar queue that turns
//!   fast-forward window selection from an O(components) poll into an
//!   O(active) lookup,
//! * [`selection`] — process-wide wheel-vs-poll selection tallies for
//!   the host-performance trajectory.
//!
//! # Cycle protocol
//!
//! All clocked components follow one per-cycle protocol, expressed by
//! [`clock::ClockedComponent`] and driven by [`clock::Scheduler`]:
//!
//! 1. consumers `pop` from component outputs,
//! 2. producers `push` into component inputs (bounded by `can_accept`),
//! 3. `tick()` advances internal state by one cycle.
//!
//! A packet entering a multi-stage component therefore advances at most one
//! stage per cycle — the "trading latency for throughput" behaviour the
//! paper relies on. `tests/scheduler_properties.rs` asserts this invariant
//! under randomized traffic.

pub mod arbiter;
pub mod clock;
pub mod control;
pub mod crossbar;
pub mod dram;
pub mod fifo;
pub mod link;
pub mod memory;
pub mod network;
pub mod probe;
pub mod selection;
pub mod snapshot;
pub mod stats;
pub mod wheel;

pub use arbiter::{OddEvenArbiter, RoundRobinArbiter};
pub use clock::{min_activity, ClockedComponent, DrainStep, Scheduler, StallError};
pub use control::{DrainError, RunControl};
pub use crossbar::CrossbarNetwork;
pub use dram::{DramSystem, DramTiming, MemoryChannel, MemoryStats};
pub use fifo::Fifo;
pub use link::InterChipLink;
pub use memory::BankPorts;
pub use network::{Network, Packet};
pub use probe::Instrumented;
pub use selection::SelectionCounts;
pub use snapshot::{content_checksum, SnapError, SnapReader, SnapValue, SnapWriter, Snapshot};
pub use stats::NetworkStats;
pub use wheel::EventWheel;
