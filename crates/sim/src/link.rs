//! A modeled inter-chip interconnect for sharded multi-chip execution.
//!
//! When a graph is partitioned across several accelerator chips, edge
//! updates whose source vertex lives on one chip and whose destination
//! interval lives on another must cross a board-level link. Unlike the
//! on-chip fabrics, such links are latency- and bandwidth-dominated, so
//! [`InterChipLink`] models exactly those two quantities and nothing
//! else: per-endpoint egress queues of bounded depth, a fixed serialized
//! injection rate per endpoint, and a fixed in-flight latency.
//!
//! The component follows the crate's per-cycle protocol ([`Network`] on
//! top of [`ClockedComponent`]) and is driven by the same
//! [`crate::Scheduler`] that clocks the chip pipelines, so a multi-chip
//! composite drains compute and communication under one clock.
//!
//! # Timing contract
//!
//! A packet pushed during cycle `c` becomes poppable at its destination
//! during cycle `c + 1 + latency` at the earliest, later if the egress
//! queue is backed up behind more than `bandwidth` packets per cycle.
//! With `latency == 0` the link degenerates to the one-stage-per-cycle
//! minimum every component in this crate obeys.

use crate::clock::ClockedComponent;
use crate::fifo::Fifo;
use crate::network::{Network, Packet};
use crate::stats::NetworkStats;
use std::collections::VecDeque;

/// A point-to-point-complete link fabric between `num_chips` endpoints
/// with modeled latency and per-endpoint injection bandwidth.
#[derive(Debug, Clone)]
pub struct InterChipLink<T> {
    /// Per-source egress queues awaiting serialization onto the link.
    egress: Vec<Fifo<T>>,
    /// Packets on the wire: `(deliver_at_cycle, packet)`, ordered by
    /// delivery time (insertion order with a constant latency).
    flight: VecDeque<(u64, T)>,
    /// Arrived packets per destination endpoint.
    ingress: Vec<VecDeque<T>>,
    latency: u64,
    bandwidth: usize,
    now: u64,
    stats: NetworkStats,
}

impl<T: Packet> InterChipLink<T> {
    /// Creates a link fabric between `num_chips` endpoints.
    ///
    /// `latency` is the in-flight cycle count added on top of the
    /// one-cycle stage minimum; `bandwidth` is the number of packets each
    /// endpoint can serialize onto the link per cycle; `egress_capacity`
    /// bounds each endpoint's egress queue (producers stall beyond it).
    ///
    /// # Panics
    ///
    /// Panics if `num_chips`, `bandwidth`, or `egress_capacity` is zero.
    // lint:allow-item(panic-freedom): documented constructor panics; link shapes come from validated MultiChipConfig, checked once before any cycle
    pub fn new(num_chips: usize, latency: u64, bandwidth: usize, egress_capacity: usize) -> Self {
        assert!(num_chips > 0, "a link needs at least one endpoint");
        assert!(bandwidth > 0, "link bandwidth must be positive");
        assert!(egress_capacity > 0, "egress queues need capacity");
        InterChipLink {
            egress: (0..num_chips).map(|_| Fifo::new(egress_capacity)).collect(),
            flight: VecDeque::new(),
            ingress: (0..num_chips).map(|_| VecDeque::new()).collect(),
            latency,
            bandwidth,
            now: 0,
            stats: NetworkStats::new(),
        }
    }

    /// The modeled in-flight latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// The pure `&self` form of the link's activity window.
    ///
    /// This is the same value `ClockedComponent::next_activity` reports;
    /// it is kept as an inherent method so skip debug-asserts, composite
    /// event-wheel window closures, and the legacy poll oracle can query
    /// it without a mutable borrow.
    pub fn activity_window(&self) -> Option<u64> {
        if self.ingress.iter().any(|q| !q.is_empty()) {
            return Some(0);
        }
        if self.egress.iter().any(|q| !q.is_empty()) {
            return Some(0);
        }
        self.flight
            .front()
            .map(|&(deliver_at, _)| deliver_at.saturating_sub(self.now + 1))
    }

    /// Packets each endpoint can inject per cycle.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }
}

impl<T: Packet> ClockedComponent for InterChipLink<T> {
    fn tick(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        // Serialize up to `bandwidth` packets per endpoint onto the wire.
        for q in &mut self.egress {
            for _ in 0..self.bandwidth {
                match q.pop() {
                    Some(pkt) => self.flight.push_back((self.now + self.latency, pkt)),
                    None => break,
                }
            }
        }
        // Land everything whose flight time has elapsed.
        while let Some(&(deliver_at, _)) = self.flight.front() {
            if deliver_at > self.now {
                break;
            }
            let Some((_, pkt)) = self.flight.pop_front() else {
                break;
            };
            self.ingress[pkt.dest()].push_back(pkt);
        }
    }

    fn in_flight(&self) -> usize {
        self.egress.in_flight()
            + self.flight.len()
            + self.ingress.iter().map(VecDeque::len).sum::<usize>()
    }

    fn network_stats(&self) -> Option<NetworkStats> {
        Some(self.stats)
    }

    /// Arrived packets are poppable now and queued egress serializes at
    /// the next tick; otherwise the earliest on-the-wire delivery bounds
    /// the idle window (`flight` is ordered by delivery time).
    fn next_activity(&mut self) -> Option<u64> {
        self.activity_window()
    }

    fn skip(&mut self, cycles: u64) {
        debug_assert!(
            self.activity_window().is_none_or(|w| cycles <= w),
            "skip() overran the link's activity window"
        );
        self.now += cycles;
        self.stats.cycles += cycles;
    }
}

impl<T: Packet> Network<T> for InterChipLink<T> {
    fn num_inputs(&self) -> usize {
        self.egress.len()
    }

    fn num_outputs(&self) -> usize {
        self.ingress.len()
    }

    fn can_accept(&self, input: usize, _packet: &T) -> bool {
        !self.egress[input].is_full()
    }

    fn push(&mut self, input: usize, packet: T) -> Result<(), T> {
        match self.egress[input].push(packet) {
            Ok(()) => {
                self.stats.accepted += 1;
                Ok(())
            }
            Err(packet) => {
                self.stats.rejected += 1;
                Err(packet)
            }
        }
    }

    fn peek(&self, output: usize) -> Option<&T> {
        self.ingress[output].front()
    }

    fn pop(&mut self, output: usize) -> Option<T> {
        let pkt = self.ingress[output].pop_front();
        if pkt.is_some() {
            self.stats.delivered += 1;
        }
        pkt
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

impl<T: crate::snapshot::SnapValue> crate::snapshot::Snapshot for InterChipLink<T> {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.tag(b"LINK");
        w.usize(self.egress.len());
        w.u64(self.now);
        self.stats.save(w);
        self.egress[..].save(w);
        self.flight.save(w);
        self.ingress[..].save(w);
    }

    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        r.expect_tag(b"LINK")?;
        let num_chips = r.usize()?;
        if num_chips != self.egress.len() {
            return Err(crate::snapshot::SnapError::new(format!(
                "link endpoint mismatch: snapshot {num_chips}, live {}",
                self.egress.len()
            )));
        }
        self.now = r.u64()?;
        self.stats.load(r)?;
        self.egress[..].load(r)?;
        self.flight.load(r)?;
        self.ingress[..].load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Scheduler;
    use crate::network::testing::TestPacket;

    fn pkt(dest: usize, tag: u64) -> TestPacket {
        TestPacket { dest, tag }
    }

    #[test]
    fn respects_latency() {
        let mut link: InterChipLink<TestPacket> = InterChipLink::new(2, 3, 1, 4);
        link.push(0, pkt(1, 7)).unwrap();
        // not visible for 1 (stage) + 3 (latency) ticks
        for cycle in 0..4 {
            assert!(link.peek(1).is_none(), "cycle {cycle}");
            link.tick();
        }
        assert_eq!(link.pop(1), Some(pkt(1, 7)));
        assert!(link.is_drained());
    }

    #[test]
    fn zero_latency_is_one_stage() {
        let mut link: InterChipLink<TestPacket> = InterChipLink::new(2, 0, 1, 4);
        link.push(0, pkt(0, 1)).unwrap();
        assert!(link.peek(0).is_none()); // same-cycle visibility forbidden
        link.tick();
        assert_eq!(link.pop(0), Some(pkt(0, 1)));
    }

    #[test]
    fn bandwidth_serializes_bursts() {
        // 4 packets through a bandwidth-2 endpoint: two ticks to inject,
        // so the last packet lands one cycle after the first pair.
        let mut link: InterChipLink<TestPacket> = InterChipLink::new(2, 0, 2, 8);
        for tag in 0..4 {
            link.push(0, pkt(1, tag)).unwrap();
        }
        link.tick();
        assert_eq!(link.ingress[1].len(), 2);
        link.tick();
        assert_eq!(link.ingress[1].len(), 4);
        // delivery preserves per-source FIFO order
        let tags: Vec<u64> = std::iter::from_fn(|| link.pop(1)).map(|p| p.tag).collect();
        assert_eq!(tags, [0, 1, 2, 3]);
    }

    #[test]
    fn full_egress_rejects_and_counts() {
        let mut link: InterChipLink<TestPacket> = InterChipLink::new(2, 0, 1, 2);
        assert!(link.can_accept(0, &pkt(1, 0)));
        link.push(0, pkt(1, 0)).unwrap();
        link.push(0, pkt(1, 1)).unwrap();
        assert!(!link.can_accept(0, &pkt(1, 2)));
        assert_eq!(link.push(0, pkt(1, 2)), Err(pkt(1, 2)));
        assert_eq!(link.stats().accepted, 2);
        assert_eq!(link.stats().rejected, 1);
    }

    #[test]
    fn drains_under_the_scheduler() {
        let mut link: InterChipLink<TestPacket> = InterChipLink::new(4, 5, 2, 16);
        for src in 0..4usize {
            for tag in 0..8 {
                link.push(src, pkt((src + 1) % 4, tag)).unwrap();
            }
        }
        let mut got = 0usize;
        let mut scheduler = Scheduler::new().with_stall_guard(1_000);
        let spent = scheduler
            .drain(&mut link, |link, _| {
                for out in 0..4 {
                    while link.pop(out).is_some() {
                        got += 1;
                    }
                }
            })
            .expect("drains");
        assert_eq!(got, 32);
        // 8 packets per endpoint at bandwidth 2 = 4 injection cycles,
        // plus 5 cycles of flight, plus the delivery stage.
        assert!(spent >= 9, "spent {spent}");
        assert_eq!(link.stats().delivered, 32);
        assert_eq!(link.stats().accepted, 32);
    }

    #[test]
    fn activity_hint_tracks_flight_time() {
        let mut link: InterChipLink<TestPacket> = InterChipLink::new(2, 5, 1, 4);
        assert_eq!(link.next_activity(), None, "empty link is quiescent");
        link.push(0, pkt(1, 3)).unwrap();
        assert_eq!(link.next_activity(), Some(0), "egress serializes next tick");
        link.tick(); // on the wire: lands 5 cycles later
        let window = link.next_activity().expect("packet in flight");
        assert_eq!(window, 4);
        ClockedComponent::skip(&mut link, window);
        link.tick();
        assert_eq!(link.next_activity(), Some(0), "arrived packet is poppable");
        assert_eq!(link.pop(1), Some(pkt(1, 3)));
        assert_eq!(link.stats().cycles, 6);
    }

    #[test]
    fn fast_forward_drain_is_bit_identical() {
        let run = |fast: bool| {
            let mut link: InterChipLink<TestPacket> = InterChipLink::new(3, 9, 1, 8);
            for src in 0..3usize {
                for tag in 0..5 {
                    link.push(src, pkt((src + 1) % 3, tag)).unwrap();
                }
            }
            let mut got = 0usize;
            let mut s = Scheduler::new()
                .with_stall_guard(1_000)
                .with_fast_forward(fast);
            let spent = s
                .drain(&mut link, |link, _| {
                    for out in 0..3 {
                        while link.pop(out).is_some() {
                            got += 1;
                        }
                    }
                })
                .expect("drains");
            (spent, got, *link.stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = InterChipLink::<TestPacket>::new(2, 0, 0, 4);
    }
}
