//! A modeled off-chip memory system: HBM-style channels with per-bank
//! row buffers.
//!
//! The on-chip fabrics in this crate arbitrate *ports*; off-chip memory
//! is dominated by a different mechanism entirely — row-buffer locality
//! inside DRAM banks and the bounded queue in front of each channel.
//! [`MemoryChannel`] models exactly that: a bounded request queue feeding
//! `B` banks, each with one open row, serving one access at a time with
//! hit / miss / conflict latencies derived from tCAS-class timing
//! parameters ([`DramTiming`]). [`DramSystem`] interleaves a flat line
//! address space across `C` such channels.
//!
//! Like [`crate::link::InterChipLink`], the model follows the crate's
//! per-cycle protocol ([`ClockedComponent`]) and is driven by the same
//! [`crate::Scheduler`] that clocks the compute pipelines, so a run
//! drains compute and memory under one clock.
//!
//! # Timing contract
//!
//! A request accepted during cycle `c` starts service at the earliest in
//! cycle `c + 1` (the one-stage-per-cycle minimum every component in
//! this crate obeys), and only once its bank is idle. Service takes
//!
//! * [`DramTiming::hit_cycles`] when the bank's open row matches
//!   (row-buffer **hit**: just the column access, tCAS),
//! * [`DramTiming::miss_cycles`] when the bank has no open row
//!   (row **miss**: activate + column access, tRCD + tCAS),
//! * [`DramTiming::conflict_cycles`] when a different row is open
//!   (row **conflict**: precharge + activate + column access,
//!   tRP + tRCD + tCAS).
//!
//! The completed line is poppable via [`MemoryChannel::pop_ready`] in
//! the cycle after service ends. Requests queue in arrival order; each
//! idle bank may begin at most one request per cycle, and a request only
//! waits on requests ahead of it that target the *same* bank
//! (bank-level parallelism, no reordering within a bank).

use crate::clock::ClockedComponent;
use std::collections::VecDeque;

/// DRAM timing parameters in accelerator clock cycles.
///
/// The three classic latency components; the per-access latencies are
/// derived sums (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramTiming {
    /// Column access latency, tCAS.
    pub t_cas: u64,
    /// Row activation latency, tRCD.
    pub t_rcd: u64,
    /// Precharge latency, tRP.
    pub t_rp: u64,
}

impl Default for DramTiming {
    /// HBM2-class timings at a 1 GHz accelerator clock (~14 ns each).
    fn default() -> Self {
        DramTiming {
            t_cas: 14,
            t_rcd: 14,
            t_rp: 14,
        }
    }
}

impl DramTiming {
    /// Service cycles for a row-buffer hit (tCAS).
    pub fn hit_cycles(&self) -> u64 {
        self.t_cas.max(1)
    }

    /// Service cycles for a row miss on a closed bank (tRCD + tCAS).
    pub fn miss_cycles(&self) -> u64 {
        (self.t_rcd + self.t_cas).max(1)
    }

    /// Service cycles for a row conflict (tRP + tRCD + tCAS).
    pub fn conflict_cycles(&self) -> u64 {
        (self.t_rp + self.t_rcd + self.t_cas).max(1)
    }
}

/// Cumulative counters of a memory channel (or a merged system).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Requests accepted into a channel queue.
    pub accepted: u64,
    /// Requests rejected because the channel queue was full.
    pub rejected: u64,
    /// Lines whose service completed.
    pub completed: u64,
    /// Accesses that hit an open row (tCAS only).
    pub row_hits: u64,
    /// Accesses that opened a closed bank (tRCD + tCAS).
    pub row_misses: u64,
    /// Accesses that evicted a different open row (tRP + tRCD + tCAS).
    pub row_conflicts: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

impl MemoryStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        MemoryStats::default()
    }

    /// Fraction of serviced accesses that hit an open row — the
    /// row-buffer locality figure. 0.0 when nothing was serviced.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Folds `other` into `self` by summing every counter (same contract
    /// as [`crate::NetworkStats::merge`]: `cycles` sums too).
    pub fn merge(&mut self, other: &MemoryStats) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.cycles += other.cycles;
    }
}

/// One queued line fetch, pre-decoded to its bank and row.
#[derive(Debug, Clone, Copy)]
struct Request {
    /// Opaque line id handed back on completion.
    line: u64,
    bank: usize,
    row: u64,
}

/// One in-service access at a bank.
#[derive(Debug, Clone, Copy)]
struct Service {
    line: u64,
    done_at: u64,
}

/// One DRAM bank: an open-row register and at most one access in flight.
#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    service: Option<Service>,
}

/// One memory channel: a bounded request queue over `B` row-buffered
/// banks.
#[derive(Debug, Clone)]
pub struct MemoryChannel {
    queue: VecDeque<Request>,
    queue_depth: usize,
    banks: Vec<Bank>,
    ready: VecDeque<u64>,
    now: u64,
    timing: DramTiming,
    stats: MemoryStats,
    /// Per-bank issued-this-cycle scratch, reused every tick (hot path:
    /// no per-cycle allocation).
    issued: Vec<bool>,
    /// Earliest `done_at` across in-service banks (`u64::MAX` when all
    /// banks are idle): ticks before it cannot land anything.
    min_done_at: u64,
    /// Whether the issue scan is provably a no-op: after any full tick
    /// every still-queued request targets a busy bank (the scan is
    /// greedy), so nothing can issue until a completion frees a bank or
    /// a new request is accepted — both clear this flag. Together with
    /// `min_done_at` this makes between-event ticks O(1), which is what
    /// keeps loaded-channel idle windows cheap (`skip` ticks them for
    /// real).
    issue_quiet: bool,
    /// Fault-injection brown-out: while set, the channel accepts and
    /// completes but issues nothing, so queued requests sit until the
    /// window lifts (`docs/robustness.md`).
    paused: bool,
}

impl MemoryChannel {
    /// Creates a channel with `num_banks` banks and a `queue_depth`-entry
    /// request queue.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` or `queue_depth` is zero.
    // lint:allow-item(panic-freedom, hot-path-alloc): construction: documented zero-size panics plus one-time bank/scratch allocation, before any cycle runs
    pub fn new(num_banks: usize, queue_depth: usize, timing: DramTiming) -> Self {
        assert!(num_banks > 0, "a channel needs at least one bank");
        assert!(queue_depth > 0, "request queues need capacity");
        MemoryChannel {
            queue: VecDeque::new(),
            queue_depth,
            banks: vec![Bank::default(); num_banks],
            ready: VecDeque::new(),
            now: 0,
            timing,
            stats: MemoryStats::new(),
            issued: vec![false; num_banks],
            min_done_at: u64::MAX,
            issue_quiet: true,
            paused: false,
        }
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Sets the brown-out flag: a paused channel still lands in-service
    /// completions (the DRAM core keeps its timing) but issues no new
    /// accesses, so queued requests wait out the window. Finite windows
    /// therefore stall, never lose, traffic.
    pub fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
        if !paused {
            // Queued work may now issue; the quiet-scan cache is stale.
            self.issue_quiet = false;
        }
    }

    /// Whether the channel is browned out.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Whether the request queue can take one more request.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.queue_depth
    }

    /// Offers a line fetch for `(bank, row)`; `line` is handed back by
    /// [`MemoryChannel::pop_ready`] on completion.
    ///
    /// Returns whether the request was accepted (`false` = queue full,
    /// counted in [`MemoryStats::rejected`]).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn try_request(&mut self, line: u64, bank: usize, row: u64) -> bool {
        // lint:allow(panic-freedom): documented precondition: bank indices come from the address mapper, which reduces modulo the bank count
        assert!(bank < self.banks.len(), "bank out of range");
        if !self.can_accept() {
            self.stats.rejected += 1;
            return false;
        }
        self.queue.push_back(Request { line, bank, row });
        self.stats.accepted += 1;
        self.issue_quiet = false;
        true
    }

    /// Pops one completed line fetch, if any finished.
    pub fn pop_ready(&mut self) -> Option<u64> {
        self.ready.pop_front()
    }

    /// Whether a rejected request would keep being rejected, identically,
    /// every cycle: the queue is full and no queued request targets an
    /// idle bank (so no queue slot frees by issue) until the channel's
    /// next service completion — which bounds every fast-forward window.
    /// Producers that retry a rejected fetch each cycle can then
    /// bulk-commit their per-cycle rejections
    /// ([`MemoryChannel::commit_rejected`]) instead of being stepped.
    pub fn retry_stable(&self) -> bool {
        !self.can_accept()
            && self
                .queue
                .iter()
                .all(|req| self.banks[req.bank].service.is_some())
    }

    /// Commits `count` deterministic retry rejections at once (the
    /// fast-forward twin of `count` failed [`MemoryChannel::try_request`]
    /// calls under [`MemoryChannel::retry_stable`] conditions).
    pub fn commit_rejected(&mut self, count: u64) {
        self.stats.rejected += count;
    }

    /// Cumulative channel statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Cycles until a line can next land in `ready` — the only externally
    /// observable event a channel produces. Request *issue* is internal
    /// (it changes no consumer-visible state), so a loaded channel still
    /// reports a positive window: in-service accesses complete at their
    /// known `done_at`, and a queued request cannot complete sooner than
    /// an issue next tick plus the fastest (row-hit) service.
    ///
    /// This is the pure `&self` form of
    /// [`ClockedComponent::next_activity`]; `skip` debug-asserts against
    /// it, and [`DramSystem`]'s event wheel uses it as the per-channel
    /// window function and debug-build poll oracle.
    pub fn activity_window(&self) -> Option<u64> {
        if !self.ready.is_empty() {
            return Some(0);
        }
        let service = self
            .banks
            .iter()
            .filter_map(|b| b.service.map(|s| s.done_at.saturating_sub(self.now + 1)))
            .min();
        let queued = if self.queue.is_empty() {
            None
        } else {
            Some(self.timing.hit_cycles())
        };
        crate::clock::min_activity(service, queued)
    }
}

impl ClockedComponent for MemoryChannel {
    fn tick(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        // Between events a tick is pure time-keeping: nothing lands
        // before `min_done_at`, and a provably-no-op issue scan stays a
        // no-op until a completion or a new accept clears the flag.
        if self.issue_quiet && self.min_done_at > self.now {
            return;
        }
        // Land accesses whose service time elapsed.
        for bank in &mut self.banks {
            if let Some(s) = bank.service {
                if s.done_at <= self.now {
                    self.ready.push_back(s.line);
                    self.stats.completed += 1;
                    bank.service = None;
                }
            }
        }
        // A browned-out channel lands completions but issues nothing;
        // the quiet-scan cache stays off so un-pausing resumes issue.
        if self.paused {
            self.min_done_at = self
                .banks
                .iter()
                .filter_map(|b| b.service.map(|s| s.done_at))
                .min()
                .unwrap_or(u64::MAX);
            self.issue_quiet = false;
            return;
        }
        // Issue: scan the queue in arrival order; each idle bank begins
        // at most one access per cycle. A request only waits behind
        // older requests to the *same* bank.
        self.issued.iter_mut().for_each(|b| *b = false);
        let mut i = 0;
        while i < self.queue.len() {
            let req = self.queue[i];
            let bank = &mut self.banks[req.bank];
            if bank.service.is_some() || self.issued[req.bank] {
                i += 1;
                continue;
            }
            let latency = match bank.open_row {
                Some(open) if open == req.row => {
                    self.stats.row_hits += 1;
                    self.timing.hit_cycles()
                }
                None => {
                    self.stats.row_misses += 1;
                    self.timing.miss_cycles()
                }
                Some(_) => {
                    self.stats.row_conflicts += 1;
                    self.timing.conflict_cycles()
                }
            };
            bank.open_row = Some(req.row);
            bank.service = Some(Service {
                line: req.line,
                done_at: self.now + latency,
            });
            self.issued[req.bank] = true;
            self.queue.remove(i);
        }
        // Cache the next-event state: everything still queued targets a
        // busy bank (the scan above was greedy), so the next tick that
        // can do anything is the next completion — or a new accept.
        self.min_done_at = self
            .banks
            .iter()
            .filter_map(|b| b.service.map(|s| s.done_at))
            .min()
            .unwrap_or(u64::MAX);
        self.issue_quiet = true;
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
            + self.banks.iter().filter(|b| b.service.is_some()).count()
            + self.ready.len()
    }

    fn next_activity(&mut self) -> Option<u64> {
        self.activity_window()
    }

    /// With work in motion the window's ticks still issue and serve
    /// accesses, so they run for real (each is O(banks + queue), far
    /// cheaper than a pipeline step); an empty channel's ticks are pure
    /// time-keeping, committed in O(1).
    fn skip(&mut self, cycles: u64) {
        debug_assert!(
            self.activity_window().is_none_or(|w| cycles <= w),
            "skip() overran the channel's activity window"
        );
        if self.queue.is_empty() && self.banks.iter().all(|b| b.service.is_none()) {
            debug_assert!(self.ready.is_empty() || cycles == 0);
            self.now += cycles;
            self.stats.cycles += cycles;
        } else {
            for _ in 0..cycles {
                self.tick();
            }
        }
    }
}

/// A `C`-channel memory system over a flat line address space.
///
/// Line `l` maps to channel `l % C`; within a channel, consecutive lines
/// fill one row (`row_lines` lines per row) before moving to the next
/// bank, so streaming accesses enjoy row-buffer hits while independent
/// streams spread across banks.
#[derive(Debug, Clone)]
pub struct DramSystem {
    channels: Vec<MemoryChannel>,
    row_lines: u64,
    /// Indexed per-channel wake registry: window selection visits only
    /// channels with a due or dirty wake instead of polling all of them
    /// (`docs/simulation.md`). Dirtied on accepts and on due wakes; the
    /// debug-build oracle holds it equal to
    /// [`DramSystem::poll_next_activity`].
    wheel: crate::wheel::EventWheel,
}

impl DramSystem {
    /// Creates `num_channels` channels of `num_banks` banks each, with
    /// `row_lines` cache lines per DRAM row.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    // lint:allow-item(panic-freedom, hot-path-alloc): construction: documented zero-size panics plus one-time channel allocation, before any cycle runs
    pub fn new(
        num_channels: usize,
        num_banks: usize,
        queue_depth: usize,
        row_lines: u64,
        timing: DramTiming,
    ) -> Self {
        assert!(num_channels > 0, "need at least one channel");
        assert!(row_lines > 0, "rows must hold at least one line");
        DramSystem {
            channels: (0..num_channels)
                .map(|_| MemoryChannel::new(num_banks, queue_depth, timing))
                .collect(),
            row_lines,
            wheel: crate::wheel::EventWheel::new(num_channels, crate::wheel::DEFAULT_WHEEL_HORIZON),
        }
    }

    /// Replaces the wake-registry horizon (a configuration knob; the
    /// default is [`crate::wheel::DEFAULT_WHEEL_HORIZON`]).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is invalid per
    /// [`crate::wheel::EventWheel::try_new`]; configuration-derived
    /// horizons are validated upstream (`AcceleratorConfig::validate`).
    pub fn set_wheel_horizon(&mut self, horizon: usize) {
        let mut wheel = crate::wheel::EventWheel::new(self.channels.len(), horizon);
        wheel.advance(self.wheel.now());
        wheel.mark_all_dirty();
        self.wheel = wheel;
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Browns out (or restores) one channel for fault injection; the
    /// wake registry is dirtied because the channel's activity window
    /// changes shape with the flag.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn set_channel_paused(&mut self, channel: usize, paused: bool) {
        // Documented precondition: fault plans are validated against the
        // channel count before injection, so the index is in range.
        self.channels[channel].set_paused(paused);
        self.wheel.mark_dirty(channel);
    }

    /// Decodes a line address to `(channel, bank, row)`.
    fn map(&self, line: u64) -> (usize, usize, u64) {
        let c = self.channels.len() as u64;
        let channel = (line % c) as usize;
        let row = (line / c) / self.row_lines;
        let bank = (row % self.channels[channel].num_banks() as u64) as usize;
        (channel, bank, row)
    }

    /// Offers a fetch of `line`; returns whether the owning channel
    /// accepted it.
    pub fn try_request(&mut self, line: u64) -> bool {
        let (channel, bank, row) = self.map(line);
        let accepted = self.channels[channel].try_request(line, bank, row);
        if accepted {
            // New input can only make the channel's next event earlier
            // than its registered wake — the one staleness the wheel
            // cannot recover from on its own.
            self.wheel.mark_dirty(channel);
        }
        accepted
    }

    /// Whether a rejected fetch of `line` stays rejected every cycle
    /// until its channel's next completion (see
    /// [`MemoryChannel::retry_stable`]).
    pub fn line_retry_stable(&self, line: u64) -> bool {
        let (channel, _, _) = self.map(line);
        self.channels[channel].retry_stable()
    }

    /// Bulk-commits `count` deterministic retry rejections of `line`
    /// against its owning channel.
    pub fn commit_rejected(&mut self, line: u64, count: u64) {
        let (channel, _, _) = self.map(line);
        self.channels[channel].commit_rejected(count);
    }

    /// Pops one completed line from any channel (round-robin-free:
    /// channels are scanned in index order each call).
    pub fn pop_ready(&mut self) -> Option<u64> {
        self.channels.iter_mut().find_map(MemoryChannel::pop_ready)
    }

    /// Statistics merged across all channels.
    pub fn stats(&self) -> MemoryStats {
        let mut all = MemoryStats::new();
        for ch in &self.channels {
            all.merge(ch.stats());
        }
        all
    }

    /// The legacy O(channels) activity fold — what
    /// [`ClockedComponent::next_activity`] computed before the event
    /// wheel. Kept as the debug-build oracle the wheel is asserted
    /// against, and public so property tests can compare the two on
    /// randomized traffic.
    pub fn poll_next_activity(&self) -> Option<u64> {
        self.channels
            .iter()
            .map(MemoryChannel::activity_window)
            .fold(None, crate::clock::min_activity)
    }
}

impl ClockedComponent for DramSystem {
    fn tick(&mut self) {
        for ch in &mut self.channels {
            ch.tick();
        }
        self.wheel.advance(1);
        // A channel whose wake was reached has just acted; its old wake
        // says nothing about its future, so re-register it. Channels
        // sleeping past `now` keep their absolute wake untouched.
        self.wheel.dirty_due();
    }

    fn in_flight(&self) -> usize {
        self.channels.iter().map(ClockedComponent::in_flight).sum()
    }

    fn next_activity(&mut self) -> Option<u64> {
        let channels = &self.channels;
        let window = self.wheel.next_window(|c| channels[c].activity_window());
        debug_assert_eq!(
            window,
            self.poll_next_activity(),
            "event wheel diverged from the channel activity poll"
        );
        window
    }

    fn wheel_indexed(&self) -> bool {
        true
    }

    /// Every channel's clock advances each cycle, busy or not, so the
    /// skip is committed to all of them (empty channels have no window
    /// to overrun). Loaded channels issue internally during the window;
    /// the wheel's per-candidate revalidation absorbs the resulting
    /// stale-early wakes.
    fn skip(&mut self, cycles: u64) {
        for ch in &mut self.channels {
            ch.skip(cycles);
        }
        self.wheel.advance(cycles);
    }
}

impl crate::snapshot::Snapshot for MemoryStats {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.tag(b"MSTA");
        w.u64(self.accepted);
        w.u64(self.rejected);
        w.u64(self.completed);
        w.u64(self.row_hits);
        w.u64(self.row_misses);
        w.u64(self.row_conflicts);
        w.u64(self.cycles);
    }

    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        r.expect_tag(b"MSTA")?;
        self.accepted = r.u64()?;
        self.rejected = r.u64()?;
        self.completed = r.u64()?;
        self.row_hits = r.u64()?;
        self.row_misses = r.u64()?;
        self.row_conflicts = r.u64()?;
        self.cycles = r.u64()?;
        Ok(())
    }
}

impl crate::snapshot::Snapshot for MemoryChannel {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.tag(b"MCHN");
        w.usize(self.banks.len());
        w.usize(self.queue_depth);
        w.u64(self.now);
        w.u64(self.min_done_at);
        w.bool(self.issue_quiet);
        w.bool(self.paused);
        self.stats.save(w);
        w.usize(self.queue.len());
        for req in &self.queue {
            w.u64(req.line);
            w.usize(req.bank);
            w.u64(req.row);
        }
        for bank in &self.banks {
            w.value(&bank.open_row);
            w.value(&bank.service.map(|s| (s.line, s.done_at)));
        }
        self.ready.save(w);
    }

    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        r.expect_tag(b"MCHN")?;
        let banks = r.usize()?;
        let depth = r.usize()?;
        if banks != self.banks.len() || depth != self.queue_depth {
            return Err(crate::snapshot::SnapError::new(format!(
                "memory channel shape mismatch: snapshot {banks} banks / depth {depth}, \
                 live {} / {}",
                self.banks.len(),
                self.queue_depth
            )));
        }
        self.now = r.u64()?;
        self.min_done_at = r.u64()?;
        self.issue_quiet = r.bool()?;
        self.paused = r.bool()?;
        self.stats.load(r)?;
        let queued = r.usize()?;
        if queued > self.queue_depth {
            return Err(crate::snapshot::SnapError::new(format!(
                "memory channel queue {queued} exceeds depth {}",
                self.queue_depth
            )));
        }
        self.queue.clear();
        for _ in 0..queued {
            let line = r.u64()?;
            let bank = r.usize()?;
            let row = r.u64()?;
            if bank >= self.banks.len() {
                return Err(crate::snapshot::SnapError::new(format!(
                    "queued request bank {bank} out of range"
                )));
            }
            self.queue.push_back(Request { line, bank, row });
        }
        for bank in &mut self.banks {
            bank.open_row = r.value()?;
            bank.service = r
                .value::<Option<(u64, u64)>>()?
                .map(|(line, done_at)| Service { line, done_at });
        }
        self.ready.load(r)?;
        // Per-tick scratch is not state.
        self.issued.iter_mut().for_each(|b| *b = false);
        Ok(())
    }
}

impl crate::snapshot::Snapshot for DramSystem {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.tag(b"DSYS");
        w.usize(self.channels.len());
        self.channels[..].save(w);
        self.wheel.save(w);
    }

    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        r.expect_tag(b"DSYS")?;
        let channels = r.usize()?;
        if channels != self.channels.len() {
            return Err(crate::snapshot::SnapError::new(format!(
                "channel count mismatch: snapshot {channels}, live {}",
                self.channels.len()
            )));
        }
        self.channels[..].load(r)?;
        self.wheel.load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Scheduler;

    fn channel(banks: usize, depth: usize) -> MemoryChannel {
        MemoryChannel::new(banks, depth, DramTiming::default())
    }

    /// Drives `ch` until `line` completes; returns the cycles it took.
    fn cycles_to_complete(ch: &mut MemoryChannel) -> u64 {
        let mut got = Vec::new();
        let mut s = Scheduler::new().with_stall_guard(10_000);
        let spent = s
            .drain(ch, |ch, _| {
                while let Some(l) = ch.pop_ready() {
                    got.push(l);
                }
            })
            .expect("drains");
        assert!(!got.is_empty());
        spent
    }

    #[test]
    fn closed_bank_pays_miss_then_open_row_hits() {
        let t = DramTiming::default();
        let mut ch = channel(4, 8);
        assert!(ch.try_request(0, 0, 0));
        let first = cycles_to_complete(&mut ch);
        assert!(first >= t.miss_cycles(), "first access activates: {first}");
        assert_eq!(ch.stats().row_misses, 1);
        // same row again: a hit, strictly faster
        assert!(ch.try_request(1, 0, 0));
        let second = cycles_to_complete(&mut ch);
        assert!(second < first, "hit {second} vs miss {first}");
        assert_eq!(ch.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let t = DramTiming::default();
        let mut ch = channel(2, 8);
        ch.try_request(0, 0, 5);
        cycles_to_complete(&mut ch);
        // different row, same bank: conflict, the slowest access class
        ch.try_request(1, 0, 6);
        let cycles = cycles_to_complete(&mut ch);
        assert!(cycles >= t.conflict_cycles(), "{cycles}");
        assert_eq!(ch.stats().row_conflicts, 1);
        assert!((ch.stats().row_hit_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_queue_rejects_and_counts() {
        let mut ch = channel(1, 2);
        assert!(ch.try_request(0, 0, 0));
        assert!(ch.try_request(1, 0, 0));
        assert!(!ch.can_accept());
        assert!(!ch.try_request(2, 0, 0));
        assert_eq!(ch.stats().rejected, 1);
        assert_eq!(ch.stats().accepted, 2);
    }

    #[test]
    fn banks_service_in_parallel_same_bank_serializes() {
        // two requests to different banks overlap; two to one bank do not
        let mut par = channel(2, 8);
        par.try_request(0, 0, 0);
        par.try_request(1, 1, 0);
        let overlapped = cycles_to_complete(&mut par);
        let mut ser = channel(2, 8);
        ser.try_request(0, 0, 0);
        ser.try_request(1, 0, 1);
        let serialized = cycles_to_complete(&mut ser);
        assert!(
            overlapped < serialized,
            "parallel {overlapped} vs serial {serialized}"
        );
    }

    #[test]
    fn system_interleaves_lines_across_channels() {
        let mut sys = DramSystem::new(4, 2, 8, 8, DramTiming::default());
        for line in 0..8u64 {
            assert!(sys.try_request(line), "line {line}");
        }
        let mut got = Vec::new();
        let mut s = Scheduler::new().with_stall_guard(10_000);
        s.drain(&mut sys, |sys, _| {
            while let Some(l) = sys.pop_ready() {
                got.push(l);
            }
        })
        .expect("drains");
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        let stats = sys.stats();
        assert_eq!(stats.completed, 8);
        // 2 consecutive lines land in each channel's first row: 1 miss +
        // 1 hit per channel
        assert_eq!(stats.row_misses, 4);
        assert_eq!(stats.row_hits, 4);
        assert!((stats.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn streaming_is_row_friendly() {
        // consecutive lines in one channel hit the open row until the
        // row boundary
        let mut sys = DramSystem::new(1, 4, 64, 16, DramTiming::default());
        for line in 0..32u64 {
            assert!(sys.try_request(line));
        }
        let mut s = Scheduler::new().with_stall_guard(100_000);
        s.drain(&mut sys, |sys, _| while sys.pop_ready().is_some() {})
            .expect("drains");
        let stats = sys.stats();
        // 2 rows of 16 lines: 2 activations, 30 hits
        assert_eq!(stats.row_misses + stats.row_conflicts, 2);
        assert_eq!(stats.row_hits, 30);
        assert!(stats.row_hit_rate() > 0.9);
    }

    #[test]
    fn activity_hint_tracks_service_completion() {
        let t = DramTiming::default();
        let mut ch = channel(2, 8);
        assert_eq!(ch.next_activity(), None, "empty channel is quiescent");
        assert!(ch.try_request(0, 0, 0));
        // a queued request is internal motion: the earliest observable
        // completion is an issue next tick plus a row-hit service
        assert_eq!(ch.next_activity(), Some(t.hit_cycles()));
        ch.tick(); // issue: service ends after miss_cycles
        let window = ch.next_activity().expect("service in flight");
        assert_eq!(window, t.miss_cycles() - 1);
        // skipping the window and ticking once must land the line —
        // bit-identical to ticking the whole way
        ClockedComponent::skip(&mut ch, window);
        assert_eq!(ch.next_activity(), Some(0));
        ch.tick();
        assert_eq!(ch.pop_ready(), Some(0));
        assert_eq!(ch.stats().cycles, t.miss_cycles() + 1);
        assert_eq!(ch.stats().completed, 1);
    }

    #[test]
    fn loaded_channel_skip_runs_real_ticks() {
        // skip over a window with queued + in-service work must be
        // bit-identical to ticking: issues happen inside the window
        let t = DramTiming::default();
        let mut a = channel(2, 8);
        let mut b = channel(2, 8);
        for ch in [&mut a, &mut b] {
            ch.try_request(0, 0, 0);
            ch.try_request(1, 1, 0);
            ch.tick(); // both issue
            ch.try_request(2, 0, 0); // queued behind bank 0
        }
        let window = a.next_activity().expect("loaded");
        assert!(window > 0 && window <= t.hit_cycles());
        ClockedComponent::skip(&mut a, window);
        for _ in 0..window {
            b.tick();
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.in_flight(), b.in_flight());
    }

    #[test]
    fn fast_forward_drain_is_bit_identical() {
        let run = |fast: bool| {
            let mut sys = DramSystem::new(2, 2, 8, 8, DramTiming::default());
            for line in 0..6u64 {
                assert!(sys.try_request(line));
            }
            let mut got = Vec::new();
            let mut s = Scheduler::new()
                .with_stall_guard(10_000)
                .with_fast_forward(fast);
            let spent = s
                .drain(&mut sys, |sys, _| {
                    while let Some(l) = sys.pop_ready() {
                        got.push(l);
                    }
                })
                .expect("drains");
            got.sort_unstable();
            (spent, got, sys.stats())
        };
        let naive = run(false);
        let fast = run(true);
        assert_eq!(naive, fast);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overran the channel's activity window")]
    fn over_optimistic_skip_is_caught() {
        let mut ch = channel(1, 4);
        ch.try_request(0, 0, 0);
        ch.tick(); // service in flight, window = miss_cycles - 1
        ClockedComponent::skip(&mut ch, 10_000);
    }

    #[test]
    fn stats_merge_and_zero_guards() {
        let s = MemoryStats::new();
        assert_eq!(s.row_hit_rate(), 0.0);
        let mut a = MemoryStats {
            accepted: 1,
            rejected: 2,
            completed: 3,
            row_hits: 4,
            row_misses: 5,
            row_conflicts: 6,
            cycles: 7,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.accepted, 2);
        assert_eq!(a.cycles, 14);
        assert_eq!(a.row_hits, 8);
    }
}
