//! Occupancy instrumentation for propagation fabrics.
//!
//! [`Instrumented`] wraps any [`Network`] and records its in-flight
//! occupancy each cycle, yielding the utilization profile behind buffer
//! sizing decisions like the paper's Fig. 12 (the knee at 160 entries is
//! where the occupancy distribution stops being capacity-clipped).

use crate::clock::ClockedComponent;
use crate::network::{Network, Packet};
use crate::stats::NetworkStats;

/// Summary of an occupancy trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySummary {
    /// Cycles sampled.
    pub cycles: u64,
    /// Mean in-flight packets per cycle.
    pub mean: f64,
    /// Maximum in-flight packets observed.
    pub max: usize,
    /// Fraction of cycles with zero in-flight packets.
    pub idle_fraction: f64,
}

/// A [`Network`] wrapper that samples occupancy at every tick.
///
/// # Example
///
/// ```
/// use higraph_sim::{ClockedComponent, CrossbarNetwork, Network};
/// use higraph_sim::probe::Instrumented;
///
/// #[derive(Debug)]
/// struct P(usize);
/// impl higraph_sim::Packet for P {
///     fn dest(&self) -> usize { self.0 }
/// }
///
/// let mut net = Instrumented::new(CrossbarNetwork::new(2, 2, 4));
/// net.push(0, P(1)).ok();
/// net.tick();
/// net.pop(1);
/// net.tick();
/// let s = net.summary();
/// assert_eq!(s.cycles, 2);
/// assert!(s.max >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Instrumented<N> {
    inner: N,
    samples: u64,
    total_occupancy: u128,
    max_occupancy: usize,
    idle_cycles: u64,
    histogram: Vec<u64>,
}

impl<N> Instrumented<N> {
    /// Wraps `inner`, starting an empty trace.
    pub fn new(inner: N) -> Self {
        Instrumented {
            inner,
            samples: 0,
            total_occupancy: 0,
            max_occupancy: 0,
            idle_cycles: 0,
            histogram: Vec::new(),
        }
    }

    /// The wrapped network.
    pub fn inner(&self) -> &N {
        &self.inner
    }

    /// Unwraps, discarding the trace.
    pub fn into_inner(self) -> N {
        self.inner
    }

    /// Occupancy histogram: `histogram()[k]` = cycles with exactly `k`
    /// packets in flight.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Summary statistics of the trace so far.
    pub fn summary(&self) -> OccupancySummary {
        OccupancySummary {
            cycles: self.samples,
            mean: if self.samples == 0 {
                0.0
            } else {
                self.total_occupancy as f64 / self.samples as f64
            },
            max: self.max_occupancy,
            idle_fraction: if self.samples == 0 {
                0.0
            } else {
                self.idle_cycles as f64 / self.samples as f64
            },
        }
    }
}

impl<T: Packet, N: Network<T>> Network<T> for Instrumented<N> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    fn can_accept(&self, input: usize, packet: &T) -> bool {
        self.inner.can_accept(input, packet)
    }

    fn push(&mut self, input: usize, packet: T) -> Result<(), T> {
        self.inner.push(input, packet)
    }

    fn peek(&self, output: usize) -> Option<&T> {
        self.inner.peek(output)
    }

    fn pop(&mut self, output: usize) -> Option<T> {
        self.inner.pop(output)
    }

    fn stats(&self) -> &NetworkStats {
        self.inner.stats()
    }
}

impl<N: ClockedComponent> ClockedComponent for Instrumented<N> {
    fn tick(&mut self) {
        self.inner.tick();
        let occ = self.inner.in_flight();
        self.samples += 1;
        self.total_occupancy += occ as u128;
        self.max_occupancy = self.max_occupancy.max(occ);
        if occ == 0 {
            self.idle_cycles += 1;
        }
        if occ >= self.histogram.len() {
            self.histogram.resize(occ + 1, 0);
        }
        self.histogram[occ] += 1;
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight()
    }

    fn network_stats(&self) -> Option<NetworkStats> {
        self.inner.network_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::CrossbarNetwork;

    #[derive(Debug, Clone, Copy)]
    struct P(usize);
    impl Packet for P {
        fn dest(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn records_occupancy_over_time() {
        let mut net = Instrumented::new(CrossbarNetwork::new(2, 2, 4));
        // cycle 1: one packet in flight
        net.push(0, P(1)).unwrap();
        net.tick();
        // cycle 2: drained
        assert!(net.pop(1).is_some());
        net.tick();
        let s = net.summary();
        assert_eq!(s.cycles, 2);
        assert_eq!(s.max, 1);
        assert!((s.mean - 0.5).abs() < 1e-12);
        assert!((s.idle_fraction - 0.5).abs() < 1e-12);
        assert_eq!(net.histogram(), &[1, 1]);
    }

    #[test]
    fn empty_trace_summary() {
        let net: Instrumented<CrossbarNetwork<P>> =
            Instrumented::new(CrossbarNetwork::new(1, 1, 1));
        let s = net.summary();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.idle_fraction, 0.0);
    }

    #[test]
    fn histogram_total_equals_cycles() {
        let mut net = Instrumented::new(CrossbarNetwork::new(2, 2, 8));
        for t in 0..50 {
            let _ = net.push(t % 2, P(t % 2));
            if t % 3 == 0 {
                let _ = net.pop(0);
                let _ = net.pop(1);
            }
            net.tick();
        }
        let total: u64 = net.histogram().iter().sum();
        assert_eq!(total, net.summary().cycles);
    }

    #[test]
    fn into_inner_returns_wrapped_network() {
        let mut net = Instrumented::new(CrossbarNetwork::new(2, 2, 4));
        net.push(0, P(0)).unwrap();
        let inner = net.into_inner();
        assert_eq!(inner.in_flight(), 1);
    }
}
