//! Process-wide tallies of fast-forward window selections, split by how
//! the drained component finds its minimum activity window: through an
//! indexed [`EventWheel`](crate::wheel::EventWheel) or through the legacy
//! O(components) `next_activity` poll.
//!
//! These are observability counters for the host-performance trajectory
//! (`repro hostperf` reports wheel-vs-poll selection counts per leg) —
//! they are *not* part of the accelerator's `Metrics`: a naive per-cycle
//! drain performs no window selections at all, so folding them into
//! `Metrics` would break the naive-vs-fast bit-identity contract.
//!
//! The [`Scheduler`](crate::Scheduler) tallies selections locally during
//! a drain and flushes them here once per drain, so the atomics stay off
//! the per-cycle hot path.

use std::sync::atomic::{AtomicU64, Ordering};

static WHEEL_WINDOWS: AtomicU64 = AtomicU64::new(0);
static POLL_WINDOWS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide selection tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionCounts {
    /// Window selections answered by an event wheel.
    pub wheel_windows: u64,
    /// Window selections answered by the legacy poll.
    pub poll_windows: u64,
}

impl SelectionCounts {
    /// Selections accumulated since `earlier` (wrapping, so interleaved
    /// snapshots from other threads never panic).
    pub fn since(&self, earlier: &SelectionCounts) -> SelectionCounts {
        SelectionCounts {
            wheel_windows: self.wheel_windows.wrapping_sub(earlier.wheel_windows),
            poll_windows: self.poll_windows.wrapping_sub(earlier.poll_windows),
        }
    }
}

/// Adds a drain's local tallies to the process-wide counters.
pub fn record(wheel_windows: u64, poll_windows: u64) {
    if wheel_windows > 0 {
        WHEEL_WINDOWS.fetch_add(wheel_windows, Ordering::Relaxed);
    }
    if poll_windows > 0 {
        POLL_WINDOWS.fetch_add(poll_windows, Ordering::Relaxed);
    }
}

/// The current process-wide tallies.
pub fn snapshot() -> SelectionCounts {
    SelectionCounts {
        wheel_windows: WHEEL_WINDOWS.load(Ordering::Relaxed),
        poll_windows: POLL_WINDOWS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_into_snapshots() {
        let before = snapshot();
        record(3, 2);
        record(0, 0); // no-op fast path
        let delta = snapshot().since(&before);
        // other tests may record concurrently; the delta is at least ours
        assert!(delta.wheel_windows >= 3, "{delta:?}");
        assert!(delta.poll_windows >= 2, "{delta:?}");
    }
}
