//! Offline stand-in for the parts of `rand` this workspace uses.
//!
//! The container this repository builds in has no network access, so the
//! real crates.io `rand` cannot be vendored; this shim supplies the small
//! API subset the graph generators need ([`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng`]'s `gen` / `gen_bool` /
//! `gen_range`) on top of a fixed xoshiro256++ core.
//!
//! Determinism is the only contract: the same seed always yields the same
//! stream on every platform. The stream differs from crates.io `rand`, so
//! seeded graphs differ from ones built against the real crate — all
//! in-repo tests assert structural invariants, not exact edge lists.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generator core.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over a [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a `Standard`-distributed type (here: the
    /// handful of types the workspace asks for).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling (Lemire-style multiply-shift would be
/// biased; `n` here is tiny relative to 2^64 so modulo bias is far below
/// anything the structural tests could observe — and the shim only
/// promises determinism).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    rng.next_u64() % n
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's
    /// ChaCha12-based `StdRng`; same API, different — but still fully
    /// deterministic — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
