//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! No network access means no crates.io `proptest`; this shim keeps the
//! property tests' source compatible: the [`proptest!`] macro, the
//! `prop_assert*` / [`prop_assume!`] family, range/tuple/vec/bool
//! strategies, [`strategy::Just`] / [`prop_oneof!`] /
//! [`strategy::Strategy::prop_filter`] combinators, and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * inputs are drawn from a seed derived from the test name, so runs are
//!   reproducible but do not explore a persisted regression corpus;
//! * there is **no shrinking** — a failing case reports the inputs that
//!   failed (via the panic message) without minimizing them.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A source of random test inputs.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Restricts this strategy to values satisfying `predicate`.
        /// `whence` labels the filter in the panic raised if the
        /// predicate keeps rejecting (the shim redraws instead of
        /// shrinking, so a near-impossible filter would loop forever).
        fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                predicate,
            }
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_inclusive_strategy!(u8, u16, u32, u64, usize);

    /// A strategy producing one fixed value (`proptest::strategy::Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_filter`]'s rejection-resampling adapter.
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        predicate: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1_000 {
                let value = self.inner.sample(rng);
                if (self.predicate)(&value) {
                    return value;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive draws; \
                 loosen the source strategy or the predicate",
                self.whence
            );
        }
    }

    /// Uniform choice among same-typed strategies — what the
    /// [`crate::prop_oneof!`] macro builds.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V: Debug> Union<V> {
        /// An empty union; sampling panics until an option is added.
        pub fn new() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        /// Adds one strategy to choose from.
        pub fn or(mut self, option: impl Strategy<Value = V> + 'static) -> Self {
            self.options.push(Box::new(option));
            self
        }
    }

    impl<V: Debug> Default for Union<V> {
        fn default() -> Self {
            Union::new()
        }
    }

    impl<V: Debug> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> V {
            assert!(!self.options.is_empty(), "prop_oneof! needs an option");
            let choice = rng.gen_range(0..self.options.len());
            self.options[choice].sample(rng)
        }
    }

    /// Uniformly random booleans (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy for `Vec`s of another strategy's values
    /// (`proptest::collection::vec`).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing vectors whose elements come from `element` and
    /// whose lengths are drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod bool {
    //! Boolean strategies.

    /// Any boolean, uniformly.
    pub const ANY: super::strategy::BoolAny = super::strategy::BoolAny;
}

pub mod test_runner {
    //! Test-case execution plumbing used by the [`crate::proptest!`] macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the runner draws new ones.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Deterministic per-test RNG: seeded from the test's name so every
    /// test sees a stable, independent stream.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod prelude {
    //! The imports property tests conventionally glob in.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Chooses uniformly among same-typed strategies. The real crate
/// supports `weight => strategy` arms; the shim keeps the unweighted
/// form only, which is all the workspace uses.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strategy))+
    };
}

/// Fails the current case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` on equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` on inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
}

/// Rejects the current inputs; the runner simply moves to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut executed = 0u32;
            let mut attempts = 0u32;
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(20) + 1000,
                    "too many prop_assume rejections in {}",
                    stringify!($name),
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg,)+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => executed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} cases: {}\n  inputs: {}",
                            stringify!($name), executed, msg, inputs,
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0u32..4, 0u64..9), 0..12),
            b in crate::bool::ANY,
        ) {
            prop_assert!(v.len() < 12);
            for &(a, c) in &v {
                prop_assert!(a < 4 && c < 9);
            }
            let _ = b;
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u32..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
