//! Offline stand-in for the parts of `rayon` this workspace uses.
//!
//! The batch runner in `higraph-accel` wants real data parallelism:
//! `par_iter().map(f).collect()` over independent simulations. This shim
//! delivers it with `std::thread::scope` and an atomic work cursor —
//! genuinely parallel, dynamically load-balanced (each thread grabs the
//! next unclaimed index, so one long simulation does not serialize the
//! rest of the batch), and dependency-free. It is not a full work-stealing
//! deque, and only the adaptors the workspace calls are provided:
//!
//! * [`IntoParallelIterator`] / [`IntoParallelRefIterator`] for slices,
//!   `Vec`, and `Range<usize>`;
//! * [`ParallelIterator::map`] followed by `collect`;
//! * [`current_num_threads`].
//!
//! Ordering contract: `collect` preserves input order, exactly like
//! upstream rayon's indexed parallel iterators.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.

    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] for the
    /// current thread's parallel calls.
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads a parallel call will use for a large batch:
/// an installed [`ThreadPool`]'s size, else `RAYON_NUM_THREADS` (as in
/// upstream rayon), else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(Cell::get) {
        return n;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Builder for an explicitly sized [`ThreadPool`], mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker-thread count (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = (n > 0).then_some(n);
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors upstream's signature.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// An explicitly sized worker pool.
///
/// The shim spawns scoped threads per parallel call rather than keeping
/// persistent workers, so the pool is just the thread count to use while
/// [`ThreadPool::install`] runs a closure.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's thread count governing any parallel
    /// calls it makes (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }
}

/// Runs `f` over `0..len`, in parallel, collecting results in index order.
fn parallel_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let buckets: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    local.push((i, f(i)));
                }
                buckets
                    .lock()
                    .expect("worker panicked while holding results lock")
                    .append(&mut local);
            });
        }
    });
    let mut indexed = buckets.into_inner().expect("all workers joined");
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), len);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A (lazy) parallel iterator: a source plus the mapped pipeline.
pub trait ParallelIterator: Sized {
    /// Item type produced by the pipeline.
    type Item: Send;

    /// Evaluates the pipeline for one source index.
    fn eval(&self, index: usize) -> Self::Item;

    /// Number of source items.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maps each item through `op` (lazily; work happens at `collect`).
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, op: F) -> Map<Self, F> {
        Map { base: self, op }
    }

    /// Executes the pipeline in parallel and collects in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C
    where
        Self: Sync,
    {
        C::from_ordered_vec(parallel_indexed(self.len(), |i| self.eval(i)))
    }

    /// Executes the pipeline in parallel for its side effects.
    fn for_each<F: Fn(Self::Item) + Sync>(self, op: F)
    where
        Self: Sync,
    {
        let _: Vec<()> = parallel_indexed(self.len(), |i| op(self.eval(i)));
    }
}

/// Collection types buildable from an order-preserving parallel pipeline.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// `map` adaptor.
pub struct Map<B, F> {
    base: B,
    op: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn eval(&self, index: usize) -> R {
        (self.op)(self.base.eval(index))
    }

    fn len(&self) -> usize {
        self.base.len()
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn eval(&self, index: usize) -> &'a T {
        &self.slice[index]
    }

    fn len(&self) -> usize {
        self.slice.len()
    }
}

/// Parallel iterator over owned `Vec<T>` elements.
///
/// Items are cloned out of the source at evaluation time — upstream rayon
/// moves them, but a shared-reference pipeline cannot; the batch-runner
/// payloads are small descriptor structs, so the clone is cheap.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn eval(&self, index: usize) -> T {
        self.items[index].clone()
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeParIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn eval(&self, index: usize) -> usize {
        self.start + index
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// Types whose references iterate in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The produced item type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..500).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_and_ranges() {
        let out: Vec<usize> = (3..11usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (4..12).collect::<Vec<_>>());
        let owned: Vec<String> = vec!["a".to_string(), "b".to_string()]
            .into_par_iter()
            .map(|s| s + "!")
            .collect();
        assert_eq!(owned, ["a!", "b!"]);
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // Pin 4 workers regardless of host CPU count so the threaded
        // path is exercised even on single-core machines.
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("infallible");
        let seen = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..256).collect();
        pool.install(|| {
            assert_eq!(super::current_num_threads(), 4);
            let _: Vec<()> = input
                .par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    seen.lock().unwrap().insert(std::thread::current().id());
                })
                .collect();
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected >1 worker thread, saw {:?}",
            seen.lock().unwrap().len()
        );
    }

    #[test]
    fn install_restores_previous_pool_size() {
        let outer = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("infallible");
        pool.install(|| assert_eq!(super::current_num_threads(), 3));
        assert_eq!(super::current_num_threads(), outer);
    }
}
