//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The benches keep their upstream source shape (`criterion_group!` /
//! `criterion_main!`, benchmark groups, `BenchmarkId`, `Throughput`) but
//! run under a deliberately small harness: a fixed warm-up followed by a
//! fixed number of timed samples, reporting mean / min / max (and
//! elements-per-second when a throughput is declared). There is no
//! statistical analysis, no HTML report, and no saved baselines — the
//! numbers are for eyeballing regressions in an offline container, not
//! for publication.
//!
//! Setting `CRITERION_SHIM_SMOKE=1` in the environment switches every
//! benchmark to smoke mode: no warm-up and a single timed sample. CI's
//! lint job uses this to prove the benches compile and their harness
//! code runs, without paying measurement-grade iteration counts.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Whether `CRITERION_SHIM_SMOKE=1` asked for compile-and-run-once mode.
fn smoke_mode() -> bool {
    std::env::var_os("CRITERION_SHIM_SMOKE").is_some_and(|v| v == "1")
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declared per-iteration throughput of a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_benchmark(&id.to_string(), 10, None, f);
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_benchmark(&id.to_string(), self.sample_size, self.throughput, f);
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.to_string(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
    }

    /// Ends the group (upstream flushes reports here; the shim prints as
    /// it goes, so this only prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Per-benchmark timing handle passed to the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times one call of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let value = routine();
        self.elapsed = Some(start.elapsed());
        drop(value);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let sample_size = if smoke_mode() { 1 } else { sample_size };
    if !smoke_mode() {
        // one warm-up call
        let mut bencher = Bencher::default();
        f(&mut bencher);
    }

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        samples.push(
            bencher
                .elapsed
                .expect("benchmark closure must call Bencher::iter"),
        );
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let rate = throughput.map(|t| {
        let per_iter = match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        let unit = match t {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        format!(
            "  {:.3e} {unit}",
            per_iter as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
        )
    });
    println!(
        "  {id:<40} mean {mean:>10.3?}  [min {min:>10.3?}, max {max:>10.3?}]{}",
        rate.unwrap_or_default()
    );
}

/// Declares a group function invoking each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("add", 4), &4u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x + 1
            })
        });
        group.finish();
        assert!(calls >= 4); // warm-up + samples
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        assert_eq!(BenchmarkId::new("f", 2).to_string(), "f/2");
    }
}
